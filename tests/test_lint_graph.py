"""Tests for the whole-program layer of ``repro.lint``.

Covers the facts extractor (:mod:`repro.lint.graph`), the assembled
:class:`ProjectGraph` (imports, call resolution, reachability — with
cycles, star imports and ``TYPE_CHECKING`` guards), the computed-scope
rules (:mod:`repro.lint.reachability`, both drift directions), the
project rules PAR003 and SER001, the per-file diagnostic cache, and the
``--jobs`` / cache byte-identity guarantees over a fixture package.
"""

import ast
import textwrap
from pathlib import Path

from repro.lint import (
    DiagnosticCache,
    ModuleSummary,
    ProjectGraph,
    analyze_paths,
    compute_scopes,
    lint_paths,
    summarize_tree,
)
from repro.lint.graph import (
    MODULE_DEF,
    SINK_PICKLE_LOAD,
    SINK_SHA256,
    SINK_WRITE,
)
from repro.lint.reachability import (
    ComputedScopes,
    par003_findings,
    scope_findings,
    ser001_findings,
    update_scopes_source,
)


def summary(source, module="repro.m", is_package=False):
    """The :class:`ModuleSummary` for a dedented fixture snippet."""
    tree = ast.parse(textwrap.dedent(source))
    path = "src/" + module.replace(".", "/") + ".py"
    return summarize_tree(
        tree, module, path, "strict", is_package=is_package
    )


def graph_of(**sources):
    """A :class:`ProjectGraph` over ``{dotted_module: source}`` fixtures."""
    return ProjectGraph(
        summary(source, module=module.replace("__", "."))
        for module, source in sorted(sources.items())
    )


class TestSummaryExtraction:
    def test_plain_and_aliased_imports(self):
        info = summary(
            """
            import os
            import numpy as np
            from repro.core import placement
            from repro.core.placement import place_grid as pg
            """
        )
        assert info.imports["os"] == "os"
        assert info.imports["np"] == "numpy"
        assert info.imports["placement"] == "repro.core.placement"
        assert info.imports["pg"] == "repro.core.placement.place_grid"
        assert "repro.core" in info.import_modules
        assert "repro.core.placement" in info.import_modules

    def test_relative_imports_resolve_against_the_package(self):
        info = summary(
            """
            from . import serialization
            from .serialization import dump_json
            from ..core import stats
            """,
            module="repro.analysis.runner",
        )
        assert "repro.analysis" in info.import_modules
        assert "repro.analysis.serialization" in info.import_modules
        assert "repro.core" in info.import_modules
        assert info.imports["dump_json"] == (
            "repro.analysis.serialization.dump_json"
        )

    def test_relative_import_from_a_package_init(self):
        info = summary(
            "from .engine import lint_source\n",
            module="repro.lint",
            is_package=True,
        )
        assert info.imports["lint_source"] == "repro.lint.engine.lint_source"

    def test_star_imports_are_recorded_separately(self):
        info = summary("from repro.core.placement import *\n")
        assert info.star_imports == ["repro.core.placement"]
        assert "repro.core.placement" in info.import_modules

    def test_type_checking_imports_are_not_runtime_edges(self):
        info = summary(
            """
            from typing import TYPE_CHECKING
            if TYPE_CHECKING:
                from repro.core.placement import Placement
            import repro.config
            """
        )
        assert "repro.core.placement" in info.typing_only_imports
        assert "repro.core.placement" not in info.import_modules
        assert "repro.config" in info.import_modules

    def test_sha256_sink_direct_and_aliased(self):
        direct = summary(
            "import hashlib\n\ndef fp(b):\n    return hashlib.sha256(b)\n"
        )
        aliased = summary(
            "from hashlib import sha256\n\ndef fp(b):\n    return sha256(b)\n"
        )
        assert SINK_SHA256 in direct.defs["fp"].sinks
        assert SINK_SHA256 in aliased.defs["fp"].sinks

    def test_write_sinks(self):
        info = summary(
            """
            import os

            def save(path, text):
                with open(path, "w") as fh:
                    fh.write(text)

            def swap(a, b):
                os.replace(a, b)

            def touch(path):
                path.write_text("x")

            def read(path):
                with open(path) as fh:
                    return fh.read()
            """
        )
        assert SINK_WRITE in info.defs["save"].sinks
        assert SINK_WRITE in info.defs["swap"].sinks
        assert SINK_WRITE in info.defs["touch"].sinks
        assert info.defs["read"].sinks == []

    def test_pickle_sink(self):
        info = summary(
            "import pickle\n\ndef load(fh):\n    return pickle.load(fh)\n"
        )
        assert SINK_PICKLE_LOAD in info.defs["load"].sinks

    def test_self_calls_rewrite_to_the_class_qualname(self):
        info = summary(
            """
            class Placer:
                def place(self):
                    return self._score()

                def _score(self):
                    return 0
            """
        )
        calls = [name for name, _l, _c in info.defs["Placer.place"].calls]
        assert "Placer._score" in calls

    def test_nested_defs_fold_into_the_tracked_ancestor(self):
        info = summary(
            """
            import hashlib

            def outer():
                def inner(b):
                    return hashlib.sha256(b)
                return inner
            """
        )
        assert "outer.inner" not in info.defs
        assert SINK_SHA256 in info.defs["outer"].sinks

    def test_module_level_code_lands_in_the_module_pseudo_def(self):
        info = summary("import hashlib\nTOKEN = hashlib.sha256(b'x')\n")
        assert SINK_SHA256 in info.defs[MODULE_DEF].sinks

    def test_set_constants_capture_frozenset_literals(self):
        info = summary(
            'NAMES = frozenset({\n    "b",\n    "a",\n})\nN = 3\n'
        )
        line, values = info.set_constants["NAMES"]
        assert line == 1
        assert values == ["a", "b"]
        assert "N" not in info.set_constants

    def test_summary_round_trips_through_dict(self):
        info = summary(
            """
            import hashlib
            from repro.core import placement

            def fp(b, extras=[]):
                return hashlib.sha256(b)
            """
        )
        clone = ModuleSummary.from_dict(info.to_dict())
        assert clone.to_dict() == info.to_dict()


class TestImportGraph:
    def test_cycle_is_represented_and_closure_terminates(self):
        graph = graph_of(
            repro__a="import repro.b\n",
            repro__b="import repro.a\n",
        )
        assert graph.imports_of("repro.a") == ["repro.b"]
        assert graph.imports_of("repro.b") == ["repro.a"]
        closure = graph.import_closure("repro.a")
        assert closure == {"repro.a", "repro.b"}

    def test_type_checking_imports_produce_no_runtime_edge(self):
        graph = graph_of(
            repro__a=(
                "from typing import TYPE_CHECKING\n"
                "if TYPE_CHECKING:\n"
                "    import repro.b\n"
            ),
            repro__b="X = 1\n",
        )
        assert graph.imports_of("repro.a") == []

    def test_submodule_imports_resolve_to_the_longest_known_prefix(self):
        graph = graph_of(
            repro__a="from repro.core.placement import place_grid\n",
            repro__core__placement="def place_grid():\n    return 0\n",
        )
        assert graph.imports_of("repro.a") == ["repro.core.placement"]


class TestCallGraphReachability:
    def test_transitive_reach_through_a_from_import(self):
        graph = graph_of(
            repro__a=(
                "import hashlib\n\n"
                "def fingerprint(b):\n"
                "    return hashlib.sha256(b).hexdigest()\n"
            ),
            repro__b=(
                "from repro.a import fingerprint\n\n"
                "def caller(b):\n"
                "    return fingerprint(b)\n"
            ),
            repro__c="def unrelated():\n    return 1\n",
        )
        reaching = graph.defs_reaching(SINK_SHA256)
        assert ("repro.a", "fingerprint") in reaching
        assert ("repro.b", "caller") in reaching
        assert ("repro.c", "unrelated") not in reaching
        assert graph.modules_reaching(SINK_SHA256) == {"repro.a", "repro.b"}

    def test_star_import_resolves_against_the_target_top_level(self):
        graph = graph_of(
            repro__a=(
                "import hashlib\n\n"
                "def fingerprint(b):\n"
                "    return hashlib.sha256(b)\n"
            ),
            repro__b=(
                "from repro.a import *\n\n"
                "def caller(b):\n"
                "    return fingerprint(b)\n"
            ),
        )
        assert ("repro.b", "caller") in graph.defs_reaching(SINK_SHA256)

    def test_call_cycle_terminates(self):
        graph = graph_of(
            repro__a=(
                "from repro.b import pong\nimport hashlib\n\n"
                "def ping(n):\n"
                "    hashlib.sha256(b'')\n"
                "    return pong(n - 1)\n"
            ),
            repro__b=(
                "from repro.a import ping\n\n"
                "def pong(n):\n"
                "    return ping(n)\n"
            ),
        )
        reaching = graph.defs_reaching(SINK_SHA256)
        assert ("repro.a", "ping") in reaching
        assert ("repro.b", "pong") in reaching

    def test_instantiation_reaches_init(self):
        graph = graph_of(
            repro__a=(
                "import hashlib\n\n"
                "class Spec:\n"
                "    def __init__(self, b):\n"
                "        self.token = hashlib.sha256(b)\n"
            ),
            repro__b=(
                "from repro.a import Spec\n\n"
                "def make(b):\n"
                "    return Spec(b)\n"
            ),
        )
        assert ("repro.b", "make") in graph.defs_reaching(SINK_SHA256)

    def test_method_calls_on_instances_are_a_sound_miss(self):
        graph = graph_of(
            repro__a=(
                "def run(plan):\n"
                "    plan.save()\n"
                "    return plan\n"
            ),
        )
        assert graph.resolve_call("repro.a", "plan.save") == []
        assert graph.defs_reaching(SINK_WRITE) == set()

    def test_direct_sink_set_is_not_transitive(self):
        graph = graph_of(
            repro__reader=(
                "import pickle\n\n"
                "def read(fh):\n"
                "    return pickle.load(fh)\n"
            ),
            repro__caller=(
                "from repro.reader import read\n\n"
                "def load_all(fh):\n"
                "    return read(fh)\n"
            ),
        )
        assert graph.modules_with_sink(SINK_PICKLE_LOAD) == {"repro.reader"}
        assert graph.modules_reaching(SINK_PICKLE_LOAD) == {
            "repro.reader",
            "repro.caller",
        }

    def test_subclasses_resolve_transitively(self):
        graph = graph_of(
            repro__base="class Placer:\n    pass\n",
            repro__mid=(
                "from repro.base import Placer\n\n"
                "class Greedy(Placer):\n    pass\n"
            ),
            repro__leaf=(
                "from repro.mid import Greedy\n\n"
                "class Tuned(Greedy):\n    pass\n"
            ),
        )
        subclasses = graph.subclasses_of(("repro.base", "Placer"))
        assert subclasses == {
            ("repro.mid", "Greedy"),
            ("repro.leaf", "Tuned"),
        }


def scopes_source(fingerprint=(), persistence=(), pickle=()):
    """A fixture ``scopes.py`` declaring the three audited sets."""

    def render(name, values):
        if not values:
            return f"{name} = frozenset()\n"
        lines = "".join(f'    "{value}",\n' for value in sorted(values))
        return f"{name} = frozenset({{\n{lines}}})\n"

    return (
        '"""Fixture scopes module."""\n\n'
        + render("FINGERPRINT_MODULES", fingerprint)
        + "\n"
        + render("PERSISTENCE_MODULES", persistence)
        + "\n"
        + render("PICKLE_SANCTIONED_MODULES", pickle)
    )


def drift_graph(fingerprint=(), persistence=(), pickle=()):
    """A graph with one sha256 module, one writer, one unpickler, and a
    ``repro.lint.scopes`` module declaring the given sets."""
    return graph_of(
        repro__lint__scopes=scopes_source(fingerprint, persistence, pickle),
        repro__fp=(
            "import hashlib\n\n"
            "def fp(b):\n"
            "    return hashlib.sha256(b)\n"
        ),
        repro__writer=(
            "def save(path, text):\n"
            "    with open(path, 'w') as fh:\n"
            "        fh.write(text)\n"
        ),
        repro__reader=(
            "import pickle\n\n"
            "def read(fh):\n"
            "    return pickle.load(fh)\n"
        ),
    )


class TestScopeDrift:
    IN_SYNC = dict(
        fingerprint=("repro.fp",),
        persistence=("repro.writer",),
        pickle=("repro.reader",),
    )

    def test_in_sync_sets_yield_no_findings(self):
        graph = drift_graph(**self.IN_SYNC)
        assert scope_findings(graph) == []

    def test_missing_module_direction(self):
        graph = drift_graph(
            fingerprint=(),  # repro.fp reaches sha256 but is undeclared
            persistence=("repro.writer",),
            pickle=("repro.reader",),
        )
        findings = scope_findings(graph)
        assert len(findings) == 1
        module, _line, _col, _end, code, message = findings[0]
        assert module == "repro.lint.scopes"
        assert code == "SCOPE001"
        assert "'repro.fp'" in message
        assert "--update-scopes" in message

    def test_stale_module_direction(self):
        graph = drift_graph(
            fingerprint=("repro.fp",),
            persistence=("repro.writer", "repro.ghost"),
            pickle=("repro.reader",),
        )
        findings = scope_findings(graph)
        assert len(findings) == 1
        message = findings[0][5]
        assert "'repro.ghost'" in message
        assert "stale" in message

    def test_pickle_set_is_checked_for_staleness_only(self):
        # An *undeclared* unpickler is ROB003's per-file finding, so the
        # missing direction must stay silent; a stale entry is SCOPE001.
        undeclared = drift_graph(
            fingerprint=("repro.fp",),
            persistence=("repro.writer",),
            pickle=(),
        )
        assert scope_findings(undeclared) == []
        stale = drift_graph(
            fingerprint=("repro.fp",),
            persistence=("repro.writer",),
            pickle=("repro.reader", "repro.gone"),
        )
        findings = scope_findings(stale)
        assert len(findings) == 1
        assert "'repro.gone'" in findings[0][5]

    def test_findings_anchor_at_the_declared_set_line(self):
        graph = drift_graph(
            fingerprint=(),
            persistence=("repro.writer",),
            pickle=("repro.reader",),
        )
        finding = scope_findings(graph)[0]
        scopes_summary = graph.modules["repro.lint.scopes"]
        declared_line, _values = scopes_summary.set_constants[
            "FINGERPRINT_MODULES"
        ]
        assert finding[1] == declared_line

    def test_update_scopes_source_rewrites_only_the_sets(self):
        source = scopes_source(
            fingerprint=(), persistence=("repro.ghost",), pickle=()
        )
        computed = ComputedScopes(
            fingerprint=frozenset({"repro.fp"}),
            persistence=frozenset({"repro.writer"}),
            pickle=frozenset(),
        )
        updated = update_scopes_source(source, computed)
        assert '"repro.fp",' in updated
        assert "repro.ghost" not in updated
        assert updated.startswith('"""Fixture scopes module."""')
        # Idempotent: a second application is a no-op.
        assert update_scopes_source(updated, computed) == updated
        # And the result round-trips through the extractor, empty set
        # included (the rendered ``frozenset()`` stays auditable).
        info = summary(updated, module="repro.lint.scopes")
        assert info.set_constants["FINGERPRINT_MODULES"][1] == ["repro.fp"]
        assert info.set_constants["PERSISTENCE_MODULES"][1] == [
            "repro.writer"
        ]
        assert info.set_constants["PICKLE_SANCTIONED_MODULES"][1] == []

    def test_compute_scopes_matches_the_sinks(self):
        graph = drift_graph(**self.IN_SYNC)
        computed = compute_scopes(graph)
        assert computed.fingerprint == frozenset({"repro.fp"})
        assert computed.persistence == frozenset({"repro.writer"})
        assert computed.pickle == frozenset({"repro.reader"})


class TestPAR003:
    def test_mutable_default_on_a_registry_provider(self):
        graph = graph_of(
            repro__placers=(
                "from repro.registry import PLACERS\n\n"
                "@PLACERS.register('greedy')\n"
                "def build(options={}):\n"
                "    return options\n"
            ),
            repro__registry="PLACERS = None\n",
        )
        findings = par003_findings(graph)
        assert len(findings) == 1
        assert findings[0][4] == "PAR003"
        assert "'options'" in findings[0][5]

    def test_none_default_is_fine(self):
        graph = graph_of(
            repro__placers=(
                "from repro.registry import PLACERS\n\n"
                "@PLACERS.register('greedy')\n"
                "def build(options=None):\n"
                "    return options or {}\n"
            ),
            repro__registry="PLACERS = None\n",
        )
        assert par003_findings(graph) == []

    def test_mutable_default_on_a_placer_subclass_method(self):
        graph = graph_of(
            repro__core__placers__base="class Placer:\n    pass\n",
            repro__core__placers__greedy=(
                "from repro.core.placers.base import Placer\n\n"
                "class Greedy(Placer):\n"
                "    def place(self, hints=[]):\n"
                "        return hints\n"
            ),
        )
        findings = par003_findings(graph)
        assert len(findings) == 1
        assert "'hints'" in findings[0][5]
        assert "Placer subclass" in findings[0][5]

    def test_unrelated_class_with_mutable_default_is_not_flagged(self):
        graph = graph_of(
            repro__core__placers__base="class Placer:\n    pass\n",
            repro__other=(
                "class Helper:\n"
                "    def collect(self, out=[]):\n"
                "        return out\n"
            ),
        )
        assert par003_findings(graph) == []


class TestSER001:
    def _graph(self, dump_line):
        return graph_of(
            repro__writer=(
                "import json\n\n"
                "def save(path, payload):\n"
                f"    text = {dump_line}\n"
                "    with open(path, 'w') as fh:\n"
                "        fh.write(text)\n"
            ),
        )

    def test_non_canonical_dump_on_the_persistence_path(self):
        findings = ser001_findings(self._graph("json.dumps(payload)"))
        assert [f[4] for f in findings] == ["SER001"]
        assert "sort_keys" in findings[0][5]

    def test_sort_keys_true_is_canonical(self):
        graph = self._graph("json.dumps(payload, sort_keys=True)")
        assert ser001_findings(graph) == []

    def test_dump_off_the_serialization_path_is_fine(self):
        graph = graph_of(
            repro__display=(
                "import json\n\n"
                "def show(payload):\n"
                "    return json.dumps(payload)\n"
            ),
        )
        assert ser001_findings(graph) == []


# ---------------------------------------------------------------------------
# End-to-end over a fixture package on disk
# ---------------------------------------------------------------------------


def write_fixture_tree(root: Path, declared_fingerprint=("repro.fp",)):
    """A minimal ``src/repro`` package whose computed fingerprint set is
    exactly ``{"repro.fp"}`` and persistence set ``{"repro.writer"}``."""
    package = root / "src" / "repro"
    (package / "lint").mkdir(parents=True)
    (package / "__init__.py").write_text("")
    (package / "lint" / "__init__.py").write_text("")
    (package / "lint" / "scopes.py").write_text(
        scopes_source(
            fingerprint=declared_fingerprint,
            persistence=("repro.writer",),
            pickle=(),
        )
    )
    (package / "fp.py").write_text(
        "import hashlib\n\n"
        "def fp(b):\n"
        "    return hashlib.sha256(b).hexdigest()\n"
    )
    (package / "writer.py").write_text(
        "def save(path, text):\n"
        "    with open(path, 'w') as fh:\n"
        "        fh.write(text)\n"
    )
    return root / "src"


class TestFixtureTree:
    def test_in_sync_tree_is_clean(self, tmp_path):
        target = write_fixture_tree(tmp_path)
        assert lint_paths([str(target)], root=str(tmp_path)) == []

    def test_drift_is_detected_end_to_end(self, tmp_path):
        target = write_fixture_tree(tmp_path, declared_fingerprint=())
        diagnostics = lint_paths([str(target)], root=str(tmp_path))
        assert [d.code for d in diagnostics] == ["SCOPE001"]
        assert diagnostics[0].path == "src/repro/lint/scopes.py"
        assert "'repro.fp'" in diagnostics[0].message

    def test_project_rules_skip_partial_trees(self, tmp_path):
        target = write_fixture_tree(tmp_path, declared_fingerprint=())
        # Linting one file cannot assemble meaningful computed scopes.
        single = target / "repro" / "lint" / "scopes.py"
        assert lint_paths([str(single)], root=str(tmp_path)) == []

    def test_jobs_and_serial_agree_byte_for_byte(self, tmp_path):
        target = write_fixture_tree(tmp_path, declared_fingerprint=())
        serial = lint_paths([str(target)], root=str(tmp_path), jobs=1)
        parallel = lint_paths([str(target)], root=str(tmp_path), jobs=4)
        assert serial == parallel


class TestDiagnosticCache:
    def test_second_run_is_all_hits_and_identical(self, tmp_path):
        target = write_fixture_tree(tmp_path, declared_fingerprint=())
        cache_dir = tmp_path / "cache"
        cold_cache = DiagnosticCache(str(cache_dir))
        cold = lint_paths(
            [str(target)], root=str(tmp_path), cache=cold_cache
        )
        assert cold_cache.hits == 0
        assert cold_cache.stores == cold_cache.misses > 0
        warm_cache = DiagnosticCache(str(cache_dir))
        warm = lint_paths(
            [str(target)], root=str(tmp_path), cache=warm_cache
        )
        assert warm_cache.misses == 0
        assert warm_cache.hits == cold_cache.stores
        assert warm == cold

    def test_content_change_invalidates_only_that_file(self, tmp_path):
        target = write_fixture_tree(tmp_path)
        cache_dir = tmp_path / "cache"
        first = DiagnosticCache(str(cache_dir))
        lint_paths([str(target)], root=str(tmp_path), cache=first)
        fp = target / "repro" / "fp.py"
        fp.write_text(fp.read_text() + "\nEXTRA = 1\n")
        second = DiagnosticCache(str(cache_dir))
        lint_paths([str(target)], root=str(tmp_path), cache=second)
        assert second.misses == 1
        assert second.hits == first.stores - 1

    def test_key_depends_on_module_profile_and_content(self, tmp_path):
        cache = DiagnosticCache(str(tmp_path / "cache"))
        base = cache.key("repro.a", "strict", b"x = 1\n")
        assert cache.key("repro.b", "strict", b"x = 1\n") != base
        assert cache.key("repro.a", "relaxed", b"x = 1\n") != base
        assert cache.key("repro.a", "strict", b"x = 2\n") != base
        assert cache.key("repro.a", "strict", b"x = 1\n") == base

    def test_corrupt_entry_degrades_to_a_miss(self, tmp_path):
        target = write_fixture_tree(tmp_path)
        cache_dir = tmp_path / "cache"
        lint_paths(
            [str(target)],
            root=str(tmp_path),
            cache=DiagnosticCache(str(cache_dir)),
        )
        for entry in cache_dir.glob("*.json"):
            entry.write_text("{not json")
        broken = DiagnosticCache(str(cache_dir))
        diagnostics = lint_paths(
            [str(target)], root=str(tmp_path), cache=broken
        )
        assert broken.hits == 0
        assert broken.misses > 0
        assert diagnostics == lint_paths([str(target)], root=str(tmp_path))

    def test_unwritable_directory_disables_the_cache_not_the_run(
        self, tmp_path
    ):
        target = write_fixture_tree(tmp_path)
        blocked = tmp_path / "blocked"
        blocked.write_text("")  # a *file*, so makedirs fails beneath it
        cache = DiagnosticCache(str(blocked / "cache"))
        diagnostics = lint_paths(
            [str(target)], root=str(tmp_path), cache=cache
        )
        assert cache.stores == 0
        assert diagnostics == lint_paths([str(target)], root=str(tmp_path))

    def test_cached_and_fresh_analyses_are_identical(self, tmp_path):
        target = write_fixture_tree(tmp_path, declared_fingerprint=())
        cache_dir = tmp_path / "cache"
        lint_paths(
            [str(target)],
            root=str(tmp_path),
            cache=DiagnosticCache(str(cache_dir)),
        )
        fresh = analyze_paths([str(target)], root=str(tmp_path))
        cached = analyze_paths(
            [str(target)],
            root=str(tmp_path),
            cache=DiagnosticCache(str(cache_dir)),
        )
        assert [a.to_dict() for a in fresh] == [a.to_dict() for a in cached]
