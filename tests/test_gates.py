"""Unit tests for the gate primitives."""

import pytest

from repro.circuits import gates as g
from repro.circuits.gates import Gate, total_duration
from repro.exceptions import GateError


class TestGateConstruction:
    def test_single_qubit_gate_basic_fields(self):
        gate = g.rx("q0", 90.0)
        assert gate.name == "Rx"
        assert gate.qubits == ("q0",)
        assert gate.num_qubits == 1
        assert not gate.is_two_qubit

    def test_two_qubit_gate_basic_fields(self):
        gate = g.zz("a", "b", 90.0)
        assert gate.qubits == ("a", "b")
        assert gate.num_qubits == 2
        assert gate.is_two_qubit

    def test_gate_rejects_zero_qubits(self):
        with pytest.raises(GateError):
            Gate("X", (), 1.0)

    def test_gate_rejects_three_qubits(self):
        with pytest.raises(GateError):
            Gate("CCX", ("a", "b", "c"), 1.0)

    def test_two_qubit_gate_rejects_repeated_qubit(self):
        with pytest.raises(GateError):
            g.zz("a", "a", 90.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(GateError):
            Gate("U", ("a",), -1.0)

    def test_nan_angle_rejected(self):
        with pytest.raises(GateError):
            g.rx("a", float("nan"))

    def test_infinite_angle_rejected(self):
        with pytest.raises(GateError):
            g.ry("a", float("inf"))


class TestDurations:
    def test_ninety_degree_rotation_is_one_unit(self):
        assert g.rx("a", 90.0).duration == 1.0
        assert g.ry("a", 90.0).duration == 1.0

    def test_duration_scales_with_angle(self):
        # The paper: T(Rx(180)) = 2 * T(Rx(90)).
        assert g.rx("a", 180.0).duration == pytest.approx(2 * g.rx("a", 90.0).duration)

    def test_negative_angle_costs_like_positive(self):
        assert g.ry("a", -90.0).duration == g.ry("a", 90.0).duration

    def test_rz_is_free(self):
        assert g.rz("a", 90.0).duration == 0.0
        assert g.rz("a", -720.0).duration == 0.0
        assert g.rz("a").is_free

    def test_zz_ninety_is_one_unit(self):
        assert g.zz("a", "b", 90.0).duration == 1.0

    def test_zz_scales_with_angle(self):
        assert g.zz("a", "b", 45.0).duration == pytest.approx(0.5)

    def test_cnot_costs_one_interaction_unit(self):
        assert g.cnot("a", "b").duration == 1.0

    def test_swap_costs_three_interaction_units(self):
        assert g.swap("a", "b").duration == 3.0

    def test_controlled_phase_uses_half_angle(self):
        assert g.controlled_phase("a", "b", 90.0).duration == pytest.approx(0.5)

    def test_pauli_z_is_free(self):
        assert g.pauli_z("a").duration == 0.0

    def test_pauli_x_is_two_units(self):
        assert g.pauli_x("a").duration == 2.0

    def test_total_duration_sums_gates(self):
        gates = [g.rx("a", 90), g.zz("a", "b", 90), g.rz("a", 90)]
        assert total_duration(gates) == pytest.approx(2.0)


class TestGateBehaviour:
    def test_interaction_returns_canonical_pair(self):
        assert g.zz("b", "a", 90).interaction() == g.zz("a", "b", 90).interaction()

    def test_interaction_none_for_single_qubit(self):
        assert g.rx("a").interaction() is None

    def test_remap_changes_qubits(self):
        gate = g.zz("a", "b", 90).remap({"a": "X", "b": "Y"})
        assert gate.qubits == ("X", "Y")

    def test_remap_keeps_unmapped_qubits(self):
        gate = g.zz("a", "b", 90).remap({"a": "X"})
        assert gate.qubits == ("X", "b")

    def test_remap_preserves_duration_and_angle(self):
        gate = g.zz("a", "b", 45).remap({"a": 0, "b": 1})
        assert gate.duration == pytest.approx(0.5)
        assert gate.angle == 45

    def test_with_duration(self):
        gate = g.cnot("a", "b").with_duration(3.0)
        assert gate.duration == 3.0
        assert gate.name == "CNOT"

    def test_equality_and_hash(self):
        assert g.zz("a", "b", 90) == g.zz("a", "b", 90)
        assert g.zz("a", "b", 90) != g.zz("a", "b", 45)
        assert hash(g.rx("a", 90)) == hash(g.rx("a", 90))

    def test_generic_gates_carry_custom_duration(self):
        assert g.generic_1q("a", 2.5).duration == 2.5
        assert g.generic_2q("a", "b", 3.0).duration == 3.0

    def test_generic_gate_custom_name(self):
        assert g.generic_2q("a", "b", 1.0, name="ISWAP").name == "ISWAP"
