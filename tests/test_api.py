"""Tests of the Session façade (:mod:`repro.api`)."""

import json

import pytest

from repro.analysis import sharding
from repro.analysis.serialization import deterministic_rows, dump_json
from repro.analysis.sweep import sweep_circuit
from repro.api import GridResult, PlaceResult, Session, SweepResult
from repro.config import RunConfig
from repro.core.config import PlacementOptions
from repro.core.placement import place_circuit
from repro.exceptions import ConfigError
from repro.hardware.molecules import trans_crotonic_acid
from repro.registry import load_circuit, load_environment

QFT_CONFIG = RunConfig(
    circuit="qft6",
    environment="trans-crotonic-acid",
    thresholds=(50, 100, 200),
)

ECC_CONFIG = RunConfig(
    circuit="error-correction-encoding",
    environment="acetyl-chloride",
    thresholds=(50, 100, 200),
)


class TestSessionConstruction:
    def test_from_config_accepts_config_dict_and_path(self, tmp_path):
        assert Session.from_config(QFT_CONFIG).config == QFT_CONFIG
        assert Session.from_config(QFT_CONFIG.to_dict()).config == QFT_CONFIG
        path = tmp_path / "run.json"
        QFT_CONFIG.save(str(path))
        assert Session.from_config(str(path)).config == QFT_CONFIG

    def test_rejects_non_config_values(self):
        with pytest.raises(ConfigError):
            Session("qft6")
        with pytest.raises(ConfigError):
            Session.from_config(42)

    def test_backend_override_extraction(self):
        assert Session(QFT_CONFIG).backend_override() is None
        explicit = QFT_CONFIG.replace(
            options=PlacementOptions(scheduler_backend="python")
        )
        assert Session(explicit).backend_override() == "python"


class TestPlace:
    def test_place_matches_direct_place_circuit(self):
        result = Session(ECC_CONFIG.replace(thresholds=None)).place()
        assert isinstance(result, PlaceResult)
        assert result.feasible
        direct = place_circuit(
            load_circuit("error-correction-encoding"),
            load_environment("acetyl-chloride"),
            PlacementOptions(),
        )
        assert result.placement.runtime_seconds == direct.runtime_seconds
        assert result.outcome.runtime_seconds == direct.runtime_seconds
        assert result.outcome.num_subcircuits == direct.num_subcircuits

    def test_place_payload_shape(self):
        result = Session(ECC_CONFIG).place()
        payload = result.payload()
        assert payload["circuit"] == "error-correction-encoding"
        assert payload["environment"] == "acetyl-chloride"
        assert len(payload["rows"]) == 1
        assert payload["counters"]["monomorphism.searches"] > 0
        # Canonical JSON round-trips through dump_json.
        json.loads(dump_json(payload))

    def test_infeasible_place_keeps_error(self):
        config = RunConfig(circuit="phaseest", environment="acetyl-chloride")
        result = Session(config).place()
        assert not result.feasible
        assert result.placement is None
        assert result.outcome.error_type


class TestSweep:
    def test_sweep_matches_sweep_circuit_harness(self):
        session_row = Session(QFT_CONFIG).sweep().row
        harness_row = sweep_circuit(
            "qft6", trans_crotonic_acid(), thresholds=(50, 100, 200)
        )
        assert session_row.circuit_name == harness_row.circuit_name
        assert [
            (c.threshold, c.runtime_seconds, c.num_subcircuits)
            for c in session_row.cells
        ] == [
            (c.threshold, c.runtime_seconds, c.num_subcircuits)
            for c in harness_row.cells
        ]

    def test_sweep_result_is_typed(self):
        result = Session(QFT_CONFIG).sweep()
        assert isinstance(result, SweepResult)
        assert result.thresholds == (50.0, 100.0, 200.0)
        assert result.counters
        assert result.table().startswith("qft6 on trans-crotonic acid")
        payload = result.payload()
        assert [cell["threshold"] for cell in payload["cells"]] == [50.0, 100.0, 200.0]

    def test_string_specs_accepted_by_sweep_harness(self):
        # sweep_circuit accepts registry spec strings for both sides.
        row = sweep_circuit("qft6", "trans-crotonic-acid",
                            thresholds=(100,))
        assert row.environment_name == "trans-crotonic acid"
        assert row.cells[0].feasible


class TestShardPaths:
    def test_shard_plan_embeds_config_and_fingerprint(self):
        config = QFT_CONFIG.replace(shards=2)
        session = Session(config)
        plan = session.shard_plan()
        assert plan.num_shards == 2
        assert plan.config == config
        assert plan.shard_input(0).config == config
        # The fingerprint matches a plan built from the same grid again.
        assert Session(config).shard_plan().fingerprint == plan.fingerprint

    def test_sharded_execution_merges_to_serial_sweep(self):
        config = QFT_CONFIG.replace(shards=2)
        session = Session(config)
        serial = session.sweep()
        shards = [session.sweep_shard(index) for index in range(2)]
        merged = sharding.merge_shards(shards)
        assert deterministic_rows(merged.outcomes) == deterministic_rows(
            serial.outcomes
        )

    def test_sweep_shard_requires_an_index(self):
        with pytest.raises(ConfigError, match="shard index"):
            Session(QFT_CONFIG).sweep_shard()

    def test_backend_stays_out_of_the_plan(self):
        # Two configs differing only in scheduler backend plan the same grid.
        auto = Session(QFT_CONFIG.replace(shards=2)).shard_plan()
        python_backend = Session(
            QFT_CONFIG.replace(
                shards=2, options=PlacementOptions(scheduler_backend="python")
            )
        ).shard_plan()
        assert auto.fingerprint == python_backend.fingerprint


class TestGridAndHarnessDelegates:
    def test_run_returns_grid_result_with_fingerprint(self):
        session = Session(ECC_CONFIG)
        grid = session.sweep_grid()
        result = session.run(grid.specs, fingerprint=True)
        assert isinstance(result, GridResult)
        assert len(result.outcomes) == len(grid.specs)
        assert result.fingerprint == sharding.grid_fingerprint(grid.specs)
        assert result.payload()["plan_fingerprint"] == result.fingerprint
        assert len(result.rows) == len(result.outcomes)

    def test_scalability_delegate(self):
        records = Session(
            RunConfig(circuit="hidden-stage:8", environment="chain:8")
        ).scalability(qubit_counts=(8,))
        assert len(records) == 1
        assert records[0].num_qubits == 8
