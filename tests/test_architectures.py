"""Unit tests for synthetic architectures."""

import math

import networkx as nx
import pytest

from repro.exceptions import EnvironmentError_
from repro.hardware.architectures import (
    KILOHERTZ_PAIR_DELAY,
    complete,
    grid,
    heavy_hex,
    linear_chain,
    ring,
    star,
)


class TestLinearChain:
    def test_size_and_edges(self):
        env = linear_chain(5)
        assert env.num_qubits == 5
        graph = env.adjacency_graph(KILOHERTZ_PAIR_DELAY)
        assert graph.number_of_edges() == 4
        assert nx.is_connected(graph)

    def test_one_khz_delay_in_units(self):
        # 0.001 s at 1e-4 s per unit = 10 units.
        assert linear_chain(4).pair_delay(0, 1) == 10.0

    def test_non_neighbours_cannot_interact(self):
        env = linear_chain(4)
        assert math.isinf(env.pair_delay(0, 3))

    def test_minimum_size(self):
        with pytest.raises(EnvironmentError_):
            linear_chain(1)


class TestOtherTopologies:
    def test_ring_edge_count(self):
        graph = ring(6).adjacency_graph(KILOHERTZ_PAIR_DELAY)
        assert graph.number_of_edges() == 6
        assert all(d == 2 for _, d in graph.degree())

    def test_ring_minimum_size(self):
        with pytest.raises(EnvironmentError_):
            ring(2)

    def test_grid_edge_count(self):
        graph = grid(3, 4).adjacency_graph(KILOHERTZ_PAIR_DELAY)
        assert graph.number_of_nodes() == 12
        assert graph.number_of_edges() == 3 * 3 + 2 * 4  # horizontal + vertical

    def test_grid_rejects_single_qubit(self):
        with pytest.raises(EnvironmentError_):
            grid(1, 1)

    def test_complete_graph(self):
        graph = complete(5).adjacency_graph(KILOHERTZ_PAIR_DELAY)
        assert graph.number_of_edges() == 10

    def test_star_degree_structure(self):
        graph = star(6).adjacency_graph(KILOHERTZ_PAIR_DELAY)
        degrees = dict(graph.degree())
        assert degrees[0] == 5
        assert all(degrees[i] == 1 for i in range(1, 6))

    def test_heavy_hex_bounded_degree(self):
        graph = heavy_hex(3).adjacency_graph(KILOHERTZ_PAIR_DELAY)
        assert nx.is_connected(graph)
        assert max(d for _, d in graph.degree()) <= 4

    def test_heavy_hex_minimum_distance(self):
        with pytest.raises(EnvironmentError_):
            heavy_hex(1)

    def test_custom_delays_propagate(self):
        env = linear_chain(4, pair_delay=25.0, single_qubit_delay=2.0)
        assert env.pair_delay(1, 2) == 25.0
        assert env.single_qubit_delay(0) == 2.0
