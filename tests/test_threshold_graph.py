"""Unit tests for threshold / adjacency-graph utilities."""

import pytest

from repro.exceptions import ThresholdError
from repro.hardware.molecules import pentafluorobutadienyl_iron, trans_crotonic_acid
from repro.hardware.threshold_graph import (
    PAPER_THRESHOLDS,
    connectivity_threshold,
    largest_connected_nodes,
    summarize,
    sweep_summaries,
    usable_thresholds,
)


class TestSummaries:
    def test_paper_thresholds_constant(self):
        assert PAPER_THRESHOLDS == (50.0, 100.0, 200.0, 500.0, 1000.0, 10000.0)

    def test_summary_fields(self, crotonic):
        summary = summarize(crotonic, 100.0)
        assert summary.num_nodes == 7
        assert summary.num_edges == 6
        assert summary.is_connected
        assert summary.num_components == 1
        assert summary.usable

    def test_summary_disconnected(self, crotonic):
        summary = summarize(crotonic, 50.0)
        assert not summary.is_connected
        assert summary.num_components == 2

    def test_unusable_threshold(self):
        summary = summarize(pentafluorobutadienyl_iron(), 50.0)
        assert not summary.usable

    def test_sweep_is_monotone_in_edges(self, crotonic):
        summaries = sweep_summaries(crotonic)
        edge_counts = [s.num_edges for s in summaries]
        assert edge_counts == sorted(edge_counts)


class TestConnectivity:
    def test_connectivity_threshold_crotonic(self, crotonic):
        value = connectivity_threshold(crotonic)
        assert value == 60.0  # the slowest chemical bond (C3-C4)
        assert crotonic.is_connected_at(value)

    def test_largest_connected_nodes(self, crotonic):
        nodes = largest_connected_nodes(crotonic, 50.0)
        assert "C4" not in nodes
        assert len(nodes) == 6

    def test_largest_connected_nodes_unusable_raises(self):
        with pytest.raises(ThresholdError):
            largest_connected_nodes(pentafluorobutadienyl_iron(), 50.0)

    def test_usable_thresholds_iron_complex(self):
        usable = usable_thresholds(pentafluorobutadienyl_iron())
        assert 50.0 not in usable
        assert 100.0 not in usable
        assert 200.0 in usable
