"""Unit tests for the QuantumCircuit container."""

import pytest

from repro.circuits import gates as g
from repro.circuits.circuit import QuantumCircuit
from repro.exceptions import CircuitError


@pytest.fixture
def simple_circuit():
    return QuantumCircuit(
        ["a", "b", "c"],
        [g.ry("a", 90), g.zz("a", "b", 90), g.ry("c", 90), g.zz("b", "c", 90)],
        name="simple",
    )


class TestConstruction:
    def test_empty_circuit(self):
        circuit = QuantumCircuit(["a"])
        assert circuit.num_gates == 0
        assert circuit.num_qubits == 1

    def test_duplicate_qubits_rejected(self):
        with pytest.raises(CircuitError):
            QuantumCircuit(["a", "a"])

    def test_zero_qubits_rejected(self):
        with pytest.raises(CircuitError):
            QuantumCircuit([])

    def test_gate_on_unknown_qubit_rejected(self):
        circuit = QuantumCircuit(["a", "b"])
        with pytest.raises(CircuitError):
            circuit.append(g.rx("z", 90))

    def test_append_non_gate_rejected(self):
        circuit = QuantumCircuit(["a"])
        with pytest.raises(CircuitError):
            circuit.append("not a gate")

    def test_append_returns_self_for_chaining(self):
        circuit = QuantumCircuit(["a", "b"])
        assert circuit.append(g.rx("a")).append(g.zz("a", "b")) is circuit

    def test_integer_qubit_labels(self):
        circuit = QuantumCircuit(range(4), [g.cnot(0, 1), g.cnot(2, 3)])
        assert circuit.num_qubits == 4
        assert circuit.num_gates == 2


class TestQueries:
    def test_counts(self, simple_circuit):
        assert simple_circuit.num_gates == 4
        assert simple_circuit.num_two_qubit_gates == 2
        assert len(simple_circuit) == 4

    def test_iteration_order(self, simple_circuit):
        names = [gate.name for gate in simple_circuit]
        assert names == ["Ry", "ZZ", "Ry", "ZZ"]

    def test_indexing(self, simple_circuit):
        assert simple_circuit[1].name == "ZZ"

    def test_slicing_returns_circuit(self, simple_circuit):
        sliced = simple_circuit[:2]
        assert isinstance(sliced, QuantumCircuit)
        assert sliced.num_gates == 2
        assert sliced.qubits == simple_circuit.qubits

    def test_two_qubit_gates(self, simple_circuit):
        pairs = [gate.interaction() for gate in simple_circuit.two_qubit_gates()]
        assert pairs == [("a", "b"), ("b", "c")]

    def test_used_qubits_in_first_use_order(self, simple_circuit):
        assert simple_circuit.used_qubits() == ("a", "b", "c")

    def test_interactions_unique(self):
        circuit = QuantumCircuit(["a", "b"], [g.zz("a", "b"), g.zz("b", "a")])
        assert circuit.interactions() == [("a", "b")]

    def test_interaction_counts(self):
        circuit = QuantumCircuit(
            ["a", "b", "c"], [g.zz("a", "b"), g.zz("a", "b"), g.zz("b", "c")]
        )
        counts = circuit.interaction_counts()
        assert counts[("a", "b")] == 2
        assert counts[("b", "c")] == 1

    def test_gate_name_counts(self, simple_circuit):
        assert simple_circuit.gate_name_counts() == {"Ry": 2, "ZZ": 2}

    def test_total_duration(self, simple_circuit):
        assert simple_circuit.total_duration() == pytest.approx(4.0)

    def test_equality(self, simple_circuit):
        copy = simple_circuit.copy()
        assert copy == simple_circuit
        copy.append(g.rx("a"))
        assert copy != simple_circuit


class TestTransformations:
    def test_remap(self, simple_circuit):
        remapped = simple_circuit.remap({"a": "M", "b": "C1", "c": "C2"})
        assert remapped.qubits == ("M", "C1", "C2")
        assert remapped[1].qubits == ("M", "C1")

    def test_remap_partial(self, simple_circuit):
        remapped = simple_circuit.remap({"a": "M"})
        assert remapped.qubits == ("M", "b", "c")

    def test_concatenate(self):
        first = QuantumCircuit(["a", "b"], [g.zz("a", "b")])
        second = QuantumCircuit(["b", "c"], [g.zz("b", "c")])
        combined = first.concatenate(second)
        assert combined.num_gates == 2
        assert combined.qubits == ("a", "b", "c")

    def test_without_free_gates(self):
        circuit = QuantumCircuit(["a"], [g.rz("a", 90), g.rx("a", 90)])
        filtered = circuit.without_free_gates()
        assert filtered.num_gates == 1
        assert filtered[0].name == "Rx"

    def test_subcircuit(self, simple_circuit):
        sub = simple_circuit.subcircuit(1, 3)
        assert sub.num_gates == 2
        assert sub[0].name == "ZZ"

    def test_subcircuit_invalid_range(self, simple_circuit):
        with pytest.raises(CircuitError):
            simple_circuit.subcircuit(3, 1)
        with pytest.raises(CircuitError):
            simple_circuit.subcircuit(0, 99)

    def test_copy_is_independent(self, simple_circuit):
        copy = simple_circuit.copy()
        copy.append(g.rx("a"))
        assert simple_circuit.num_gates == 4
