"""Equivalence tests for the bitset monomorphism enumerator.

Three independent referees keep the rewritten engine honest:

* ``networkx``'s :class:`GraphMatcher` in subgraph-monomorphism mode, for
  *counts* on random pattern/host pairs (the engines need not agree on
  order, only on the set of solutions);
* a verbatim copy of the original scan-based enumerator from the seed
  implementation, for *order*: the first ``k`` mappings must match the
  seed's deterministic enumeration exactly, because experiment
  reproducibility depends on the capped candidate list being stable;
* :func:`verify_monomorphism`, for soundness of every produced mapping.
"""

import itertools

import networkx as nx
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.monomorphism import (
    find_monomorphisms,
    has_monomorphism,
    iter_monomorphisms,
    verify_monomorphism,
)
from repro.core.stats import STATS

RELAXED = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ---------------------------------------------------------------------------
# The seed implementation, kept verbatim as the order reference
# ---------------------------------------------------------------------------


def _seed_pattern_order(pattern):
    if pattern.number_of_nodes() == 0:
        return []
    remaining = set(pattern.nodes())
    order = []
    start = max(remaining, key=lambda n: (pattern.degree(n), repr(n)))
    order.append(start)
    remaining.remove(start)
    while remaining:
        frontier = [
            node
            for node in remaining
            if any(neighbour in order for neighbour in pattern.neighbors(node))
        ]
        pool = frontier if frontier else list(remaining)
        nxt = max(
            pool,
            key=lambda n: (
                sum(1 for nb in pattern.neighbors(n) if nb in order),
                pattern.degree(n),
                repr(n),
            ),
        )
        order.append(nxt)
        remaining.remove(nxt)
    return order


def seed_iter_monomorphisms(pattern, host, max_count=None):
    """The original (pre-bitset) enumerator, word for word."""
    if pattern.number_of_nodes() > host.number_of_nodes():
        return
    order = _seed_pattern_order(pattern)
    host_nodes = sorted(host.nodes(), key=repr)
    host_degree = dict(host.degree())
    pattern_degree = dict(pattern.degree())

    yielded = 0
    assignment = {}
    used_hosts = set()

    def backtrack(position):
        nonlocal yielded
        if max_count is not None and yielded >= max_count:
            return
        if position == len(order):
            yielded += 1
            yield dict(assignment)
            return
        pattern_node = order[position]
        mapped_neighbours = [
            assignment[nb]
            for nb in pattern.neighbors(pattern_node)
            if nb in assignment
        ]
        for host_node in host_nodes:
            if host_node in used_hosts:
                continue
            if host_degree.get(host_node, 0) < pattern_degree.get(pattern_node, 0):
                continue
            if any(not host.has_edge(host_node, image) for image in mapped_neighbours):
                continue
            assignment[pattern_node] = host_node
            used_hosts.add(host_node)
            yield from backtrack(position + 1)
            del assignment[pattern_node]
            used_hosts.remove(host_node)
            if max_count is not None and yielded >= max_count:
                return
    yield from backtrack(0)


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------


@st.composite
def pattern_host_pairs(draw):
    host_seed = draw(st.integers(0, 10_000))
    pattern_seed = draw(st.integers(0, 10_000))
    host_nodes = draw(st.integers(4, 9))
    pattern_nodes = draw(st.integers(2, 5))
    host = nx.gnp_random_graph(host_nodes, draw(st.floats(0.2, 0.7)), seed=host_seed)
    pattern = nx.gnp_random_graph(
        pattern_nodes, draw(st.floats(0.3, 0.9)), seed=pattern_seed
    )
    return pattern, host


# ---------------------------------------------------------------------------
# Count equivalence against networkx
# ---------------------------------------------------------------------------


class TestCountsAgainstNetworkx:
    @RELAXED
    @given(pattern_host_pairs())
    def test_counts_match_graphmatcher(self, pair):
        pattern, host = pair
        ours = find_monomorphisms(pattern, host, max_count=100_000)
        matcher = nx.algorithms.isomorphism.GraphMatcher(host, pattern)
        expected = sum(1 for _ in matcher.subgraph_monomorphisms_iter())
        assert len(ours) == expected
        for mapping in ours:
            assert verify_monomorphism(pattern, host, mapping)
        # Injectivity of the enumeration itself: no duplicate mappings.
        keys = {tuple(sorted(m.items())) for m in ours}
        assert len(keys) == len(ours)

    @RELAXED
    @given(pattern_host_pairs())
    def test_existence_matches_graphmatcher(self, pair):
        pattern, host = pair
        matcher = nx.algorithms.isomorphism.GraphMatcher(host, pattern)
        assert has_monomorphism(pattern, host) == matcher.subgraph_is_monomorphic()


# ---------------------------------------------------------------------------
# Order parity against the seed enumerator
# ---------------------------------------------------------------------------


class TestOrderParityWithSeed:
    @RELAXED
    @given(pattern_host_pairs(), st.integers(1, 30))
    def test_first_k_mappings_match_seed_order(self, pair, k):
        pattern, host = pair
        ours = list(iter_monomorphisms(pattern, host, max_count=k))
        reference = list(seed_iter_monomorphisms(pattern, host, max_count=k))
        assert ours == reference

    def test_full_enumeration_order_on_molecule_host(self, crotonic):
        host = crotonic.adjacency_graph(200.0)
        for pattern in (nx.path_graph(4), nx.star_graph(3), nx.cycle_graph(4)):
            ours = list(iter_monomorphisms(pattern, host))
            reference = list(seed_iter_monomorphisms(pattern, host))
            assert ours == reference

    def test_unbounded_equals_seed_on_complete_host(self):
        pattern = nx.path_graph(3)
        host = nx.complete_graph(5)
        assert list(iter_monomorphisms(pattern, host)) == list(
            seed_iter_monomorphisms(pattern, host)
        )


# ---------------------------------------------------------------------------
# Mixed node types (the repr-keyed index table must not choke or reorder)
# ---------------------------------------------------------------------------


class TestMixedNodeTypes:
    def _mixed_host(self):
        # Integers, strings and tuples as node labels in one host graph:
        # sorting such nodes directly would raise TypeError; the engine's
        # repr-keyed node-index table must handle them.
        host = nx.Graph()
        host.add_edges_from(
            [
                (0, "a"),
                ("a", (1, 2)),
                ((1, 2), 7),
                (7, "b"),
                ("b", 0),
                ((1, 2), "a-b"),
            ]
        )
        return host

    def test_mixed_node_host_enumerates(self):
        host = self._mixed_host()
        pattern = nx.path_graph(3)
        mappings = find_monomorphisms(pattern, host, max_count=50)
        assert mappings
        for mapping in mappings:
            assert verify_monomorphism(pattern, host, mapping)

    def test_mixed_node_order_matches_seed(self):
        host = self._mixed_host()
        for pattern in (nx.path_graph(3), nx.star_graph(2), nx.cycle_graph(3)):
            assert list(iter_monomorphisms(pattern, host)) == list(
                seed_iter_monomorphisms(pattern, host)
            )

    def test_mixed_node_pattern(self):
        pattern = nx.Graph([(("x",), "y"), ("y", 3)])
        host = self._mixed_host()
        mappings = find_monomorphisms(pattern, host, max_count=10)
        for mapping in mappings:
            assert verify_monomorphism(pattern, host, mapping)
        assert mappings == list(seed_iter_monomorphisms(pattern, host, max_count=10))


# ---------------------------------------------------------------------------
# Counters
# ---------------------------------------------------------------------------


class TestSearchCounters:
    def test_nodes_explored_counter_advances(self):
        before = STATS.snapshot()
        find_monomorphisms(nx.path_graph(3), nx.complete_graph(5), max_count=10)
        delta = STATS.delta_since(before)
        assert delta.get("monomorphism.searches", 0) == 1
        assert delta.get("monomorphism.nodes_explored", 0) > 0
        assert delta.get("monomorphism.mappings_yielded", 0) == 10

    def test_counters_flushed_on_early_break(self):
        before = STATS.snapshot()
        iterator = iter_monomorphisms(nx.path_graph(2), nx.complete_graph(6))
        next(iterator)
        iterator.close()  # abandoning the generator must still flush counts
        delta = STATS.delta_since(before)
        assert delta.get("monomorphism.mappings_yielded", 0) == 1
