"""Unit tests for the random workload generators (Table 4 inputs)."""

import pytest

from repro.circuits.interaction_graph import interaction_graph
from repro.circuits.random_circuits import (
    hidden_stage_circuit,
    random_nearest_neighbour_circuit,
    random_two_qubit_circuit,
)
from repro.exceptions import CircuitError


class TestHiddenStageCircuit:
    def test_default_sizes_match_paper(self):
        generated = hidden_stage_circuit(16, seed=1)
        # log2(16) = 4 stages of 16*4 = 64 gates each.
        assert generated.num_stages == 4
        assert generated.circuit.num_gates == 4 * 64

    def test_all_gates_are_two_qubit_with_maximal_duration(self):
        generated = hidden_stage_circuit(8, seed=2)
        assert all(gate.is_two_qubit for gate in generated.circuit)
        assert all(gate.duration == 3.0 for gate in generated.circuit)

    def test_each_stage_respects_its_virtual_chain(self):
        generated = hidden_stage_circuit(8, seed=3)
        gates = list(generated.circuit.gates)
        position = 0
        for stage in generated.stages:
            chain_position = {q: i for i, q in enumerate(stage.permutation)}
            for gate in gates[position: position + stage.num_gates]:
                a, b = gate.qubits
                assert abs(chain_position[a] - chain_position[b]) == 1
            position += stage.num_gates

    def test_reproducible_with_same_seed(self):
        first = hidden_stage_circuit(8, seed=42)
        second = hidden_stage_circuit(8, seed=42)
        assert first.circuit.gates == second.circuit.gates

    def test_different_seeds_differ(self):
        first = hidden_stage_circuit(8, seed=1)
        second = hidden_stage_circuit(8, seed=2)
        assert first.circuit.gates != second.circuit.gates

    def test_custom_stage_parameters(self):
        generated = hidden_stage_circuit(8, num_stages=2, gates_per_stage=5, seed=0)
        assert generated.num_stages == 2
        assert generated.circuit.num_gates == 10

    def test_invalid_sizes_rejected(self):
        with pytest.raises(CircuitError):
            hidden_stage_circuit(1)
        with pytest.raises(CircuitError):
            hidden_stage_circuit(8, num_stages=0)


class TestOtherGenerators:
    def test_random_two_qubit_circuit_size(self):
        circuit = random_two_qubit_circuit(6, 30, seed=0)
        assert circuit.num_gates == 30
        assert circuit.num_qubits == 6

    def test_random_two_qubit_circuit_single_qubit_fraction(self):
        circuit = random_two_qubit_circuit(6, 100, single_qubit_fraction=0.5, seed=0)
        single = sum(1 for gate in circuit if not gate.is_two_qubit)
        assert 20 <= single <= 80

    def test_random_two_qubit_invalid_fraction(self):
        with pytest.raises(CircuitError):
            random_two_qubit_circuit(4, 10, single_qubit_fraction=1.5)

    def test_nearest_neighbour_circuit_interactions_on_chain(self):
        circuit = random_nearest_neighbour_circuit(10, 50, seed=5)
        graph = interaction_graph(circuit)
        for a, b in graph.edges():
            assert abs(a - b) == 1

    def test_generators_reject_single_qubit(self):
        with pytest.raises(CircuitError):
            random_two_qubit_circuit(1, 5)
        with pytest.raises(CircuitError):
            random_nearest_neighbour_circuit(1, 5)
