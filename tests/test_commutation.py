"""Unit tests for gate commutation and commutation-aware reordering."""

import numpy as np
import pytest

from repro.circuits import gates as g
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.commutation import (
    commutation_aware_reorder,
    count_interaction_alternations,
    gates_commute,
)
from repro.circuits.library import qft_circuit
from repro.simulation.statevector import circuit_unitary
from repro.simulation.unitaries import gate_unitary


def _matrices_commute(first, second, qubits):
    """Numerical ground truth: do the two gates commute on this register?"""
    circuit_ab = QuantumCircuit(qubits, [first, second])
    circuit_ba = QuantumCircuit(qubits, [second, first])
    return np.allclose(circuit_unitary(circuit_ab), circuit_unitary(circuit_ba), atol=1e-9)


class TestGatesCommute:
    def test_disjoint_supports_commute(self):
        assert gates_commute(g.rx("a", 90), g.ry("b", 90))
        assert gates_commute(g.zz("a", "b"), g.zz("c", "d"))

    def test_diagonal_gates_commute_even_when_sharing_qubits(self):
        assert gates_commute(g.zz("a", "b"), g.zz("b", "c"))
        assert gates_commute(g.rz("a"), g.zz("a", "b"))
        assert gates_commute(g.cz("a", "b"), g.controlled_phase("b", "c", 45))

    def test_same_axis_rotations_commute(self):
        assert gates_commute(g.rx("a", 30), g.rx("a", 60))
        assert gates_commute(g.ry("a", 30), g.ry("a", 60))

    def test_different_axis_rotations_do_not_commute(self):
        assert not gates_commute(g.rx("a", 90), g.ry("a", 90))

    def test_non_diagonal_two_qubit_gates_sharing_a_qubit(self):
        assert not gates_commute(g.cnot("a", "b"), g.cnot("b", "c"))

    @pytest.mark.parametrize(
        "first,second",
        [
            (g.zz("a", "b", 90), g.zz("b", "c", 45)),
            (g.rz("a", 30), g.zz("a", "b", 90)),
            (g.rx("a", 30), g.rx("a", 45)),
            (g.cz("a", "b"), g.rz("b", 90)),
            (g.controlled_phase("a", "b", 60), g.cz("b", "c")),
        ],
    )
    def test_positive_answers_are_numerically_sound(self, first, second):
        assert gates_commute(first, second)
        assert _matrices_commute(first, second, ["a", "b", "c"])


class TestReordering:
    def test_reordering_preserves_the_unitary(self):
        circuit = qft_circuit(4)
        reordered = commutation_aware_reorder(circuit)
        assert np.allclose(
            circuit_unitary(reordered), circuit_unitary(circuit), atol=1e-9
        )

    def test_reordering_preserves_gate_multiset(self):
        circuit = qft_circuit(5)
        reordered = commutation_aware_reorder(circuit)
        assert sorted(map(repr, reordered.gates)) == sorted(map(repr, circuit.gates))

    def test_reordering_groups_same_pair_gates(self):
        # Two ZZ blocks on (a, b) separated by a commuting ZZ on (b, c).
        circuit = QuantumCircuit(
            ["a", "b", "c"],
            [g.zz("a", "b", 90), g.zz("b", "c", 90), g.zz("a", "b", 45)],
        )
        reordered = commutation_aware_reorder(circuit)
        assert count_interaction_alternations(reordered) < count_interaction_alternations(circuit)

    def test_reordering_never_increases_alternations(self):
        for circuit in (qft_circuit(5), qft_circuit(6)):
            before = count_interaction_alternations(circuit)
            after = count_interaction_alternations(commutation_aware_reorder(circuit))
            assert after <= before

    def test_non_commuting_gates_keep_their_order(self):
        circuit = QuantumCircuit(
            ["a", "b", "c"],
            [g.cnot("a", "b"), g.cnot("b", "c"), g.cnot("a", "b")],
        )
        reordered = commutation_aware_reorder(circuit)
        assert reordered.gates == circuit.gates

    def test_blocked_gates_do_not_livelock(self):
        # Regression: the trailing (a,b) and (c,d) gates both have an
        # earlier same-pair gate that the non-commuting (a,c) blocker keeps
        # out of reach.  Partial bubbling used to make them nudge each
        # other back and forth forever; blocked moves must not be applied.
        circuit = QuantumCircuit(
            ["a", "b", "c", "d"],
            [
                g.cnot("c", "d"),
                g.cnot("a", "b"),
                g.cnot("a", "c"),
                g.cnot("c", "d"),
                g.cnot("a", "b"),
            ],
        )
        reordered = commutation_aware_reorder(circuit)
        assert reordered.gates == circuit.gates

    def test_random_circuit_reorder_terminates(self):
        # Regression: livelocked forever on this circuit before the
        # all-or-nothing bubbling rule.
        from repro.registry import load_circuit

        circuit = load_circuit("random:24x72x11")
        reordered = commutation_aware_reorder(circuit)
        assert sorted(map(repr, reordered.gates)) == sorted(
            map(repr, circuit.gates)
        )


class TestAlternationMetric:
    def test_counts_pair_switches(self):
        circuit = QuantumCircuit(
            ["a", "b", "c"],
            [g.zz("a", "b"), g.zz("a", "b"), g.zz("b", "c"), g.zz("a", "b")],
        )
        assert count_interaction_alternations(circuit) == 2

    def test_single_qubit_gates_ignored(self):
        circuit = QuantumCircuit(["a", "b"], [g.zz("a", "b"), g.rx("a"), g.zz("a", "b")])
        assert count_interaction_alternations(circuit) == 0


class TestPlacerIntegration:
    def test_reorder_option_preserves_placement_correctness(self, crotonic):
        from repro.core.config import PlacementOptions
        from repro.core.placement import place_circuit
        from repro.simulation.verify import verify_placement

        circuit = qft_circuit(5)
        options = PlacementOptions(threshold=100.0, reorder_commuting_gates=True)
        result = place_circuit(circuit, crotonic, options)
        report = verify_placement(circuit, result, crotonic, num_random_states=1)
        assert report.equivalent

    def test_reorder_option_does_not_hurt_much(self, crotonic):
        from repro.core.config import PlacementOptions
        from repro.core.placement import place_circuit

        plain = place_circuit(qft_circuit(6), crotonic, PlacementOptions(threshold=200.0))
        reordered = place_circuit(
            qft_circuit(6), crotonic,
            PlacementOptions(threshold=200.0, reorder_commuting_gates=True),
        )
        assert reordered.total_runtime <= plain.total_runtime * 1.25
