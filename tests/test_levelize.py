"""Unit tests for circuit levelization."""

import pytest

from repro.circuits import gates as g
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.levelize import circuit_depth, from_levels, levelize, two_qubit_depth
from repro.exceptions import CircuitError


class TestLevelize:
    def test_empty_circuit_has_no_levels(self):
        assert levelize(QuantumCircuit(["a"])) == []

    def test_parallel_gates_share_a_level(self):
        circuit = QuantumCircuit(["a", "b", "c", "d"], [g.zz("a", "b"), g.zz("c", "d")])
        levels = levelize(circuit)
        assert len(levels) == 1
        assert len(levels[0]) == 2

    def test_sequential_gates_on_same_qubit_get_levels(self):
        circuit = QuantumCircuit(["a"], [g.rx("a"), g.rx("a"), g.rx("a")])
        assert circuit_depth(circuit) == 3

    def test_chain_dependency(self):
        circuit = QuantumCircuit(
            ["a", "b", "c"], [g.zz("a", "b"), g.zz("b", "c"), g.zz("a", "b")]
        )
        assert circuit_depth(circuit) == 3

    def test_level_gates_are_disjoint(self):
        circuit = QuantumCircuit(
            ["a", "b", "c", "d"],
            [g.zz("a", "b"), g.rx("c"), g.zz("c", "d"), g.zz("a", "c"), g.rx("b")],
        )
        for level in levelize(circuit):
            used = set()
            for gate in level:
                assert not used.intersection(gate.qubits)
                used.update(gate.qubits)

    def test_levelization_preserves_gate_multiset(self):
        circuit = QuantumCircuit(
            ["a", "b", "c"], [g.zz("a", "b"), g.rx("c"), g.zz("b", "c"), g.ry("a")]
        )
        flattened = [gate for level in levelize(circuit) for gate in level]
        assert sorted(gate.name for gate in flattened) == sorted(
            gate.name for gate in circuit
        )
        assert len(flattened) == circuit.num_gates

    def test_per_qubit_order_preserved(self):
        circuit = QuantumCircuit(["a", "b"], [g.rx("a", 10), g.rx("a", 20), g.zz("a", "b")])
        levels = levelize(circuit)
        angles_on_a = [
            gate.angle for level in levels for gate in level if gate.qubits == ("a",)
        ]
        assert angles_on_a == [10, 20]

    def test_free_gates_still_impose_order(self):
        circuit = QuantumCircuit(["a"], [g.rz("a"), g.rz("a")])
        assert circuit_depth(circuit) == 2


class TestTwoQubitDepth:
    def test_single_qubit_gates_ignored(self):
        circuit = QuantumCircuit(
            ["a", "b"], [g.rx("a"), g.rx("a"), g.zz("a", "b"), g.rx("b")]
        )
        assert two_qubit_depth(circuit) == 1

    def test_counts_dependent_interactions(self):
        circuit = QuantumCircuit(
            ["a", "b", "c"], [g.zz("a", "b"), g.zz("b", "c"), g.zz("a", "c")]
        )
        assert two_qubit_depth(circuit) == 3


class TestFromLevels:
    def test_valid_levels_roundtrip(self):
        levels = [[g.zz("a", "b"), g.rx("c")], [g.zz("b", "c")]]
        circuit = from_levels(["a", "b", "c"], levels)
        assert circuit.num_gates == 3
        assert circuit_depth(circuit) == 2

    def test_overlapping_level_rejected(self):
        with pytest.raises(CircuitError):
            from_levels(["a", "b", "c"], [[g.zz("a", "b"), g.rx("a")]])
