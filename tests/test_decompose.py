"""Unit tests for gate decompositions and NMR rewriting."""

import numpy as np
import pytest

from repro.circuits import gates as g
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.decompose import (
    cnot_to_zz,
    cphase_to_zz,
    cz_to_zz,
    expand_multi_qubit_gate,
    hadamard_to_rotations,
    rewrite_gate_to_nmr,
    rewrite_to_nmr,
    swap_to_cnots,
    toffoli,
)
from repro.circuits.interaction_graph import interaction_graph
from repro.exceptions import CircuitError
from repro.simulation.statevector import circuit_unitary


def _equal_up_to_phase(u, v, atol=1e-9):
    index = np.unravel_index(np.argmax(np.abs(v)), v.shape)
    if abs(v[index]) < atol:
        return np.allclose(u, v, atol=atol)
    phase = u[index] / v[index]
    return np.allclose(u, phase * v, atol=atol)


class TestTwoQubitDecompositions:
    def test_cnot_decomposition_preserves_interaction_pair(self):
        gates = cnot_to_zz("a", "b")
        pairs = {gate.interaction() for gate in gates if gate.is_two_qubit}
        assert pairs == {("a", "b")}

    def test_cnot_decomposition_total_two_qubit_duration(self):
        gates = cnot_to_zz("a", "b")
        assert sum(gate.duration for gate in gates if gate.is_two_qubit) == 1.0

    def test_cz_decomposition_single_interaction(self):
        gates = cz_to_zz("a", "b")
        assert sum(1 for gate in gates if gate.is_two_qubit) == 1

    def test_cz_decomposition_is_unitarily_correct(self):
        circuit = QuantumCircuit(["a", "b"], cz_to_zz("a", "b"))
        expected = QuantumCircuit(["a", "b"], [g.cz("a", "b")])
        assert _equal_up_to_phase(circuit_unitary(circuit), circuit_unitary(expected))

    def test_cphase_decomposition_is_unitarily_correct(self):
        circuit = QuantumCircuit(["a", "b"], cphase_to_zz("a", "b", 90.0))
        expected = QuantumCircuit(["a", "b"], [g.controlled_phase("a", "b", 90.0)])
        assert _equal_up_to_phase(circuit_unitary(circuit), circuit_unitary(expected))

    def test_swap_to_cnots_is_unitarily_correct(self):
        circuit = QuantumCircuit(["a", "b"], swap_to_cnots("a", "b"))
        expected = QuantumCircuit(["a", "b"], [g.swap("a", "b")])
        assert _equal_up_to_phase(circuit_unitary(circuit), circuit_unitary(expected))

    def test_hadamard_decomposition_is_unitarily_correct(self):
        circuit = QuantumCircuit(["a"], hadamard_to_rotations("a"))
        expected = QuantumCircuit(["a"], [g.hadamard("a")])
        assert _equal_up_to_phase(circuit_unitary(circuit), circuit_unitary(expected))


class TestToffoli:
    def test_toffoli_uses_only_one_and_two_qubit_gates(self):
        gates = toffoli("a", "b", "c")
        assert all(gate.num_qubits <= 2 for gate in gates)

    def test_toffoli_is_unitarily_correct_on_basis_states(self):
        circuit = QuantumCircuit(["a", "b", "c"], toffoli("a", "b", "c"))
        unitary = circuit_unitary(circuit)
        # The Toffoli permutes basis states: |110> <-> |111> and fixes others.
        dim = 8
        expected = np.eye(dim, dtype=complex)
        # Qubit order (a, b, c) with a the least significant bit.
        idx_110 = 0b011  # a=1, b=1, c=0
        idx_111 = 0b111
        expected[[idx_110, idx_111]] = expected[[idx_111, idx_110]]
        assert _equal_up_to_phase(unitary, expected)

    def test_expand_multi_qubit_gate_toffoli(self):
        gates = expand_multi_qubit_gate("toffoli", ["x", "y", "z"])
        assert all(gate.num_qubits <= 2 for gate in gates)

    def test_expand_unknown_gate_raises(self):
        with pytest.raises(CircuitError):
            expand_multi_qubit_gate("FREDKIN", ["x", "y", "z"])


class TestRewriteToNmr:
    def test_native_gates_untouched(self):
        gate = g.zz("a", "b", 90)
        assert rewrite_gate_to_nmr(gate) == [gate]

    def test_unknown_gate_passes_through(self):
        gate = g.generic_2q("a", "b", 3.0)
        assert rewrite_gate_to_nmr(gate) == [gate]

    def test_rewrite_preserves_interaction_graph(self):
        circuit = QuantumCircuit(
            ["a", "b", "c"], [g.cnot("a", "b"), g.cz("b", "c"), g.hadamard("a")]
        )
        original = interaction_graph(circuit)
        rewritten = interaction_graph(rewrite_to_nmr(circuit))
        assert set(map(frozenset, original.edges())) == set(
            map(frozenset, rewritten.edges())
        )

    def test_rewrite_preserves_two_qubit_duration_per_pair(self):
        circuit = QuantumCircuit(["a", "b"], [g.cnot("a", "b")])
        rewritten = rewrite_to_nmr(circuit)
        original_duration = sum(
            gate.duration for gate in circuit if gate.is_two_qubit
        )
        rewritten_duration = sum(
            gate.duration for gate in rewritten if gate.is_two_qubit
        )
        assert rewritten_duration == pytest.approx(original_duration)

    def test_rewrite_only_uses_nmr_names(self):
        circuit = QuantumCircuit(
            ["a", "b"], [g.cnot("a", "b"), g.hadamard("a"), g.pauli_x("b")]
        )
        rewritten = rewrite_to_nmr(circuit)
        assert set(gate.name for gate in rewritten) <= {"Rx", "Ry", "Rz", "ZZ"}

    def test_cnot_rewrite_is_unitarily_correct(self):
        circuit = QuantumCircuit(["a", "b"], [g.cnot("a", "b")])
        rewritten = rewrite_to_nmr(circuit)
        assert _equal_up_to_phase(
            circuit_unitary(rewritten), circuit_unitary(circuit), atol=1e-8
        )

    def test_cnot_decomposition_is_unitarily_correct(self):
        circuit = QuantumCircuit(["a", "b"], cnot_to_zz("a", "b"))
        expected = QuantumCircuit(["a", "b"], [g.cnot("a", "b")])
        assert _equal_up_to_phase(circuit_unitary(circuit), circuit_unitary(expected))
