"""Unit tests for gate operating times and the interaction-run cap."""

import pytest

from repro.circuits import gates as g
from repro.circuits.circuit import QuantumCircuit
from repro.exceptions import PlacementError
from repro.timing.gate_times import (
    MAX_INTERACTION_USES,
    cap_interaction_runs,
    capped_circuit,
    gate_operating_time,
    identity_placement,
    total_interaction_time,
    validate_placement,
)


class TestGateOperatingTime:
    def test_two_qubit_gate_uses_pair_delay(self, acetyl):
        placement = {"a": "M", "b": "C2"}
        gate = g.zz("a", "b", 90.0)
        assert gate_operating_time(gate, placement, acetyl) == 672.0

    def test_duration_scales_operating_time(self, acetyl):
        placement = {"a": "M", "b": "C1"}
        gate = g.zz("a", "b", 180.0)
        assert gate_operating_time(gate, placement, acetyl) == 76.0

    def test_single_qubit_gate_uses_node_delay(self, acetyl):
        placement = {"a": "C2"}
        assert gate_operating_time(g.ry("a", 90.0), placement, acetyl) == 1.0

    def test_free_gate_costs_nothing(self, acetyl):
        placement = {"a": "M"}
        assert gate_operating_time(g.rz("a", 90.0), placement, acetyl) == 0.0


class TestValidatePlacement:
    def test_valid_placement_passes(self, acetyl, encoder_circuit):
        validate_placement({"a": "M", "b": "C1", "c": "C2"}, encoder_circuit, acetyl)

    def test_missing_qubit_rejected(self, acetyl, encoder_circuit):
        with pytest.raises(PlacementError):
            validate_placement({"a": "M", "b": "C1"}, encoder_circuit, acetyl)

    def test_unknown_node_rejected(self, acetyl, encoder_circuit):
        with pytest.raises(PlacementError):
            validate_placement({"a": "M", "b": "C1", "c": "X"}, encoder_circuit, acetyl)

    def test_non_injective_rejected(self, acetyl, encoder_circuit):
        with pytest.raises(PlacementError):
            validate_placement({"a": "M", "b": "M", "c": "C1"}, encoder_circuit, acetyl)

    def test_identity_placement(self, chain8):
        circuit = QuantumCircuit(range(4), [g.cnot(0, 1)])
        placement = identity_placement(circuit, chain8)
        assert placement == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_identity_placement_too_many_qubits(self, acetyl):
        circuit = QuantumCircuit(range(5), [g.cnot(0, 1)])
        with pytest.raises(PlacementError):
            identity_placement(circuit, acetyl)


class TestInteractionCap:
    def test_cap_constant(self):
        assert MAX_INTERACTION_USES == 3.0

    def test_short_runs_untouched(self):
        gates = [g.zz("a", "b", 90.0), g.zz("a", "b", 90.0)]
        assert cap_interaction_runs(gates) == gates

    def test_long_run_capped_to_three_units(self):
        gates = [g.zz("a", "b", 90.0) for _ in range(5)]
        capped = cap_interaction_runs(gates)
        assert sum(gate.duration for gate in capped) == pytest.approx(3.0)

    def test_runs_on_different_pairs_not_merged(self):
        gates = [
            g.zz("a", "b", 90.0),
            g.zz("a", "b", 90.0),
            g.zz("b", "c", 90.0),
            g.zz("a", "b", 90.0),
            g.zz("a", "b", 90.0),
        ]
        capped = cap_interaction_runs(gates)
        assert sum(gate.duration for gate in capped) == pytest.approx(5.0)

    def test_free_single_qubit_gates_do_not_break_a_run(self):
        gates = [
            g.zz("a", "b", 180.0),
            g.rz("a", 90.0),
            g.zz("a", "b", 180.0),
        ]
        capped = cap_interaction_runs(gates)
        two_qubit_total = sum(gate.duration for gate in capped if gate.is_two_qubit)
        assert two_qubit_total == pytest.approx(3.0)
        assert any(gate.name == "Rz" for gate in capped)

    def test_timed_single_qubit_gate_breaks_a_run(self):
        gates = [
            g.zz("a", "b", 180.0),
            g.ry("a", 90.0),
            g.zz("a", "b", 180.0),
        ]
        capped = cap_interaction_runs(gates)
        two_qubit_total = sum(gate.duration for gate in capped if gate.is_two_qubit)
        assert two_qubit_total == pytest.approx(4.0)

    def test_interleaved_free_gates_keep_their_positions(self):
        """Regression: interleaved free gates used to be emitted after the run."""
        gates = [
            g.zz("a", "b", 90.0),
            g.rz("a", 90.0),
            g.zz("a", "b", 90.0),
            g.rz("b", 90.0),
            g.zz("a", "b", 90.0),
        ]
        capped = cap_interaction_runs(gates)
        assert capped == gates  # under the cap: byte-for-byte unchanged

    def test_order_preserved_when_run_is_trimmed(self):
        gates = [
            g.zz("a", "b", 180.0),
            g.rz("a", 90.0),
            g.zz("a", "b", 180.0),
            g.rz("b", 90.0),
            g.zz("a", "b", 180.0),
        ]
        capped = cap_interaction_runs(gates)
        # 6 units trimmed to 3: the last two-qubit gate disappears, the
        # second is halved, and each free gate stays right where it was.
        assert [gate.name for gate in capped] == ["ZZ", "Rz", "ZZ", "Rz"]
        assert capped[0].qubits == ("a", "b")
        assert capped[1].qubits == ("a",)
        assert capped[3].qubits == ("b",)
        durations = [gate.duration for gate in capped if gate.is_two_qubit]
        assert durations == pytest.approx([2.0, 1.0])

    def test_unrelated_gate_breaks_a_run(self):
        """The conservative break rule: any other gate ends the run, even on
        qubits disjoint from the pair (merging across it is left to the
        commutation-aware reordering pass)."""
        gates = [
            g.zz("a", "b", 180.0),
            g.zz("c", "d", 90.0),
            g.zz("a", "b", 180.0),
        ]
        capped = cap_interaction_runs(gates)
        assert capped == gates
        assert sum(gate.duration for gate in capped) == pytest.approx(5.0)

    def test_cap_never_increases_total_duration(self):
        gates = [g.zz("a", "b", 45.0) for _ in range(10)] + [g.ry("a", 90.0)]
        original = sum(gate.duration for gate in gates)
        capped_total = sum(gate.duration for gate in cap_interaction_runs(gates))
        assert capped_total <= original

    def test_capped_circuit_wrapper(self):
        circuit = QuantumCircuit(["a", "b"], [g.zz("a", "b", 90.0) for _ in range(4)])
        capped = capped_circuit(circuit)
        assert capped.total_duration() == pytest.approx(3.0)
        assert capped.qubits == circuit.qubits


class TestTotals:
    def test_total_interaction_time_ignores_single_qubit_gates(self, acetyl):
        circuit = QuantumCircuit(
            ["a", "b"], [g.ry("a", 90.0), g.zz("a", "b", 90.0)]
        )
        placement = {"a": "M", "b": "C1"}
        assert total_interaction_time(circuit, placement, acetyl) == 38.0
