"""Unit tests for balanced connected bisection and separability."""

import networkx as nx
import pytest

from repro.exceptions import RoutingError
from repro.routing.separators import (
    balanced_connected_bisection,
    degree_separability_bound,
    recursive_bisections,
    separability,
)


def _is_valid_bisection(graph, bisection):
    part_one, part_two = set(bisection.part_one), set(bisection.part_two)
    assert part_one | part_two == set(graph.nodes())
    assert not part_one & part_two
    assert nx.is_connected(graph.subgraph(part_one))
    assert nx.is_connected(graph.subgraph(part_two))
    return True


class TestBisection:
    def test_path_graph_split_in_half(self):
        graph = nx.path_graph(8)
        bisection = balanced_connected_bisection(graph)
        assert _is_valid_bisection(graph, bisection)
        assert bisection.balance == 0

    def test_odd_path_split_off_by_one(self):
        graph = nx.path_graph(7)
        bisection = balanced_connected_bisection(graph)
        assert _is_valid_bisection(graph, bisection)
        assert bisection.balance == 1

    def test_cycle_graph(self):
        graph = nx.cycle_graph(10)
        bisection = balanced_connected_bisection(graph)
        assert _is_valid_bisection(graph, bisection)
        assert bisection.ratio >= 0.5

    def test_grid_graph(self):
        graph = nx.convert_node_labels_to_integers(nx.grid_2d_graph(4, 4))
        bisection = balanced_connected_bisection(graph)
        assert _is_valid_bisection(graph, bisection)
        assert bisection.ratio >= 0.5

    def test_star_graph_ratio_matches_bound(self):
        graph = nx.star_graph(6)  # center 0, leaves 1..6
        bisection = balanced_connected_bisection(graph)
        assert _is_valid_bisection(graph, bisection)
        # Only a single leaf can be split off a star.
        assert len(bisection.part_two) == 1

    def test_channel_edges_cross_the_cut(self):
        graph = nx.path_graph(6)
        bisection = balanced_connected_bisection(graph)
        for a, b in bisection.channel_edges:
            assert (a in bisection.part_one) != (b in bisection.part_one)

    def test_crotonic_acid_cut_matches_figure3(self, crotonic):
        graph = crotonic.adjacency_graph(100.0)
        bisection = balanced_connected_bisection(graph)
        parts = {frozenset(bisection.part_one), frozenset(bisection.part_two)}
        assert frozenset({"C3", "C4", "H2"}) in parts or frozenset({"M", "C1", "H1"}) in parts or bisection.balance <= 1

    def test_single_node_rejected(self):
        with pytest.raises(RoutingError):
            balanced_connected_bisection(nx.path_graph(1))

    def test_disconnected_graph_rejected(self):
        graph = nx.Graph([(0, 1), (2, 3)])
        with pytest.raises(RoutingError):
            balanced_connected_bisection(graph)


class TestSeparability:
    def test_single_node_is_perfectly_separable(self):
        assert separability(nx.path_graph(1)) == 1.0

    def test_chain_separability_at_least_half(self):
        assert separability(nx.path_graph(16)) >= 0.5

    def test_grid_separability_at_least_half(self):
        graph = nx.convert_node_labels_to_integers(nx.grid_2d_graph(4, 4))
        assert separability(graph) >= 0.5

    def test_crotonic_separability_is_half(self, crotonic):
        """The paper: liquid-state NMR molecules have s = 1/2."""
        graph = crotonic.adjacency_graph(100.0)
        assert separability(graph) == pytest.approx(0.5)

    def test_separability_never_below_degree_bound(self):
        for graph in (
            nx.path_graph(9),
            nx.cycle_graph(7),
            nx.star_graph(5),
            nx.convert_node_labels_to_integers(nx.grid_2d_graph(3, 5)),
        ):
            assert separability(graph) >= degree_separability_bound(graph) - 1e-12

    def test_recursive_bisections_cover_whole_graph(self):
        graph = nx.path_graph(8)
        bisections = recursive_bisections(graph)
        # A binary recursion over 8 nodes performs 7 cuts.
        assert len(bisections) == 7

    def test_degree_bound_values(self):
        assert degree_separability_bound(nx.path_graph(5)) == pytest.approx(0.5)
        assert degree_separability_bound(nx.star_graph(4)) == pytest.approx(0.25)
