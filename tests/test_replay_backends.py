"""Backend parity for the scheduler replay engine.

The ``RuntimeEvaluator``'s numpy and native backends must be
*bit-identical* to the pure Python reference on every code path — full
evaluation, incremental tail replay, the branch-and-bound cutoff, and the
``full_recompute`` debug mode — for randomized circuits, placements and
moves.  These tests are the in-process half of that contract;
``tests/test_determinism.py`` covers the cross-process
(``PYTHONHASHSEED`` x backend) half and the benchmark harness gates the
same property on the ``replay_*`` macro scenarios.

The parity tests run over every backend available in this interpreter:
``python`` always, ``numpy`` when importable, ``native`` when its kernel
builds (a C compiler at first use; see ``repro/timing/_native.py``).
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.circuits import gates as g
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.library import qft_circuit
from repro.core.config import PlacementOptions
from repro.core.placement import place_circuit
from repro.core.stats import STATS
from repro.exceptions import ExperimentError, PlacementError, ReproError
from repro.hardware.molecules import histidine, trans_crotonic_acid
from repro.timing import _native, _replay
from repro.timing.scheduler import RuntimeEvaluator, circuit_runtime

needs_numpy = pytest.mark.skipif(
    not _replay.NUMPY_AVAILABLE, reason="numpy is not importable"
)
needs_native = pytest.mark.skipif(
    not _native.available(), reason="native kernel does not build here"
)

#: Every backend the parity matrix can exercise in this interpreter.
AVAILABLE_BACKENDS = (
    ["python"]
    + (["numpy"] if _replay.NUMPY_AVAILABLE else [])
    + (["native"] if _native.available() else [])
)

RELAXED = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _random_circuit(num_qubits, num_gates, seed):
    rng = random.Random(seed)
    qubits = list(range(num_qubits))
    gate_list = []
    for _ in range(num_gates):
        kind = rng.random()
        if kind < 0.45:
            a, b = rng.sample(qubits, 2)
            gate_list.append(g.zz(a, b, rng.choice([45.0, 90.0, 180.0])))
        elif kind < 0.8:
            gate_list.append(g.rx(rng.choice(qubits), rng.choice([90.0, 180.0])))
        else:
            gate_list.append(g.rz(rng.choice(qubits), 90.0))  # free gate
    return QuantumCircuit(qubits, gate_list, name=f"rand{seed}")


def _random_placement(circuit, environment, seed):
    rng = random.Random(seed)
    nodes = rng.sample(list(environment.nodes), circuit.num_qubits)
    return dict(zip(circuit.qubits, nodes))


def _evaluators(circuit, environment, cap, **kwargs):
    """One evaluator per available backend, python (the reference) first."""
    evaluators = {}
    for backend in AVAILABLE_BACKENDS:
        evaluator = RuntimeEvaluator(
            circuit, environment, apply_interaction_cap=cap,
            backend=backend, **kwargs,
        )
        assert evaluator.backend == backend
        evaluators[backend] = evaluator
    return evaluators


class TestResolveBackend:
    def test_explicit_choices_resolve_to_themselves(self):
        for backend in AVAILABLE_BACKENDS:
            assert _replay.resolve_backend(backend) == backend

    def test_unknown_backend_rejected(self):
        with pytest.raises(ReproError, match="unknown scheduler backend"):
            _replay.resolve_backend("fortran")

    @needs_numpy
    def test_auto_uses_profitability_thresholds(self, monkeypatch):
        monkeypatch.delenv(_replay.BACKEND_ENV_VAR, raising=False)
        # With the native kernel out of the picture, auto resolves exactly
        # as before the native backend existed: numpy above its threshold,
        # python below.
        monkeypatch.setattr(_native, "available", lambda: False)
        small = _replay.AUTO_NUMPY_MIN_OPS - 1
        assert _replay.resolve_backend("auto", num_ops=small) == "python"
        assert (
            _replay.resolve_backend("auto", num_ops=_replay.AUTO_NUMPY_MIN_OPS)
            == "numpy"
        )
        assert _replay.resolve_backend("auto", num_ops=None) == "numpy"

    @needs_native
    def test_auto_prefers_native_above_its_threshold(self, monkeypatch):
        monkeypatch.delenv(_replay.BACKEND_ENV_VAR, raising=False)
        threshold = _replay.AUTO_NATIVE_MIN_OPS
        assert _replay.resolve_backend("auto", num_ops=threshold) == "native"
        assert _replay.resolve_backend("auto", num_ops=None) == "native"
        # Below the native threshold (and the numpy one) the fixed
        # dispatch overhead is not worth paying: pure python wins.
        assert _replay.resolve_backend("auto", num_ops=threshold - 1) == "python"

    @needs_numpy
    def test_env_var_overrides_auto(self, monkeypatch):
        monkeypatch.setenv(_replay.BACKEND_ENV_VAR, "numpy")
        assert _replay.resolve_backend("auto", num_ops=1) == "numpy"
        monkeypatch.setenv(_replay.BACKEND_ENV_VAR, "python")
        assert _replay.resolve_backend("auto", num_ops=10**6) == "python"

    @needs_native
    def test_env_var_selects_native(self, monkeypatch):
        monkeypatch.setenv(_replay.BACKEND_ENV_VAR, "native")
        assert _replay.resolve_backend("auto", num_ops=1) == "native"

    def test_env_var_does_not_override_explicit_request(self, monkeypatch):
        monkeypatch.setenv(_replay.BACKEND_ENV_VAR, "numpy")
        assert _replay.resolve_backend("python") == "python"

    def test_invalid_env_var_rejected(self, monkeypatch):
        monkeypatch.setenv(_replay.BACKEND_ENV_VAR, "cuda")
        with pytest.raises(ReproError, match="REPRO_SCHEDULER_BACKEND"):
            _replay.resolve_backend("auto")

    def test_numpy_request_without_numpy_rejected(self, monkeypatch):
        monkeypatch.setattr(_replay, "NUMPY_AVAILABLE", False)
        with pytest.raises(ReproError, match="not importable"):
            _replay.resolve_backend("numpy")

    def test_native_request_without_build_rejected(self, monkeypatch):
        monkeypatch.setattr(_native, "available", lambda: False)
        monkeypatch.setattr(
            _native, "unavailable_reason", lambda: "no C compiler found"
        )
        with pytest.raises(ReproError, match="no C compiler found"):
            _replay.resolve_backend("native")
        # The same explicit request through the environment variable must
        # fail just as loudly — a misconfigured deployment, not a fallback.
        monkeypatch.setenv(_replay.BACKEND_ENV_VAR, "native")
        with pytest.raises(ReproError, match="no C compiler found"):
            _replay.resolve_backend("auto", num_ops=10**6)

    @needs_numpy
    def test_auto_without_native_keeps_todays_resolution(self, monkeypatch):
        monkeypatch.delenv(_replay.BACKEND_ENV_VAR, raising=False)
        monkeypatch.setattr(_native, "available", lambda: False)
        assert _replay.resolve_backend("auto", num_ops=10**6) == "numpy"
        assert _replay.resolve_backend("auto", num_ops=1) == "python"

    def test_auto_without_numpy_or_native_falls_back(self, monkeypatch):
        monkeypatch.delenv(_replay.BACKEND_ENV_VAR, raising=False)
        monkeypatch.setattr(_replay, "NUMPY_AVAILABLE", False)
        monkeypatch.setattr(_native, "available", lambda: False)
        assert _replay.resolve_backend("auto", num_ops=10**6) == "python"

    @pytest.mark.skipif(
        _native.available(), reason="native kernel builds on this host"
    )
    def test_pure_python_fallback_without_native_build(self):
        # On hosts without a working toolchain, auto must silently keep
        # the python/numpy resolution and the evaluator must stay fully
        # functional on the pure-Python (or numpy) path.
        assert _native.unavailable_reason()
        resolved = _replay.resolve_backend("auto", num_ops=10**6)
        assert resolved in ("python", "numpy")
        environment = trans_crotonic_acid()
        circuit = _random_circuit(4, 20, 7)
        placement = _random_placement(circuit, environment, 8)
        evaluator = RuntimeEvaluator(circuit, environment, backend="auto")
        assert evaluator._native is None
        assert evaluator.runtime(placement) == circuit_runtime(
            circuit, placement, environment, validate=False
        )


class TestBackendParity:
    @RELAXED
    @given(st.integers(0, 500), st.booleans())
    def test_full_evaluation_parity(self, seed, cap):
        environment = trans_crotonic_acid()
        circuit = _random_circuit(5, 28, seed)
        placement = _random_placement(circuit, environment, seed + 1)
        evaluators = _evaluators(circuit, environment, cap)
        expected = circuit_runtime(
            circuit, placement, environment,
            apply_interaction_cap=cap, validate=False,
        )
        for evaluator in evaluators.values():
            assert evaluator.runtime(placement) == expected
            assert evaluator.set_base(placement) == expected

    @RELAXED
    @given(st.integers(0, 500))
    def test_incremental_and_cutoff_parity(self, seed):
        environment = trans_crotonic_acid()
        circuit = _random_circuit(5, 30, seed)
        placement = _random_placement(circuit, environment, seed + 1)
        evaluators = _evaluators(circuit, environment, True)
        python = evaluators["python"]
        others = [e for name, e in evaluators.items() if name != "python"]
        base = python.set_base(placement)
        for evaluator in others:
            assert evaluator.set_base(placement) == base
        used = set(placement.values())
        free = [n for n in environment.nodes if n not in used]
        for qubit in circuit.qubits:
            for node in free:
                overrides = {qubit: node}
                expected = python.runtime_with(overrides)
                expected_cut = python.runtime_with(overrides, limit=base)
                for evaluator in others:
                    assert evaluator.runtime_with(overrides) == expected
                    # The cutoff path must agree too (both inf or both exact).
                    assert evaluator.runtime_with(
                        overrides, limit=base
                    ) == expected_cut
            for other in circuit.qubits:
                if other == qubit:
                    continue
                swap = {qubit: placement[other], other: placement[qubit]}
                expected = python.runtime_with(swap)
                for evaluator in others:
                    assert evaluator.runtime_with(swap) == expected
        # Replays must leave the base state intact (numpy scatters durations
        # in place; native keeps per-qubit override flags).
        first = circuit.qubits[0]
        for evaluator in others:
            assert evaluator.runtime_with({first: placement[first]}) == base

    def test_replay_counters_identical(self):
        environment = trans_crotonic_acid()
        circuit = _random_circuit(5, 40, 11)
        placement = _random_placement(circuit, environment, 12)
        evaluators = _evaluators(circuit, environment, True)
        free = [n for n in environment.nodes if n not in set(placement.values())]
        deltas = []
        for evaluator in evaluators.values():
            before = STATS.snapshot()
            evaluator.set_base(placement)
            for qubit in circuit.qubits:
                for node in free:
                    evaluator.runtime_with({qubit: node})
                    evaluator.runtime_with(
                        {qubit: node}, limit=evaluator.base_runtime
                    )
            evaluator.flush_stats()
            delta = STATS.delta_since(before)
            # The environment-level pair-matrix cache warms on the first
            # array-backed evaluator and hits afterwards; that is backend
            # metadata, not evaluation accounting.
            delta.pop("scheduler.pair_matrix_cache_hits", None)
            delta.pop("scheduler.pair_matrix_cache_misses", None)
            deltas.append(delta)
        for delta in deltas[1:]:
            assert delta == deltas[0]

    @pytest.mark.parametrize("backend", [b for b in AVAILABLE_BACKENDS
                                         if b != "python"])
    def test_full_recompute_cross_checks_backends(self, backend):
        environment = histidine()
        circuit = _random_circuit(6, 40, 3)
        placement = _random_placement(circuit, environment, 4)
        evaluator = RuntimeEvaluator(
            circuit, environment, apply_interaction_cap=True,
            backend=backend, full_recompute=True,
        )
        evaluator.set_base(placement)
        free = [n for n in environment.nodes if n not in set(placement.values())]
        for qubit in circuit.qubits:
            for node in free:
                evaluator.runtime_with({qubit: node})

    @needs_numpy
    def test_full_recompute_detects_divergence(self):
        environment = trans_crotonic_acid()
        circuit = _random_circuit(4, 20, 9)
        placement = _random_placement(circuit, environment, 10)
        evaluator = RuntimeEvaluator(
            circuit, environment, backend="numpy", full_recompute=True
        )
        evaluator.set_base(placement)
        # Corrupt the compiled pair delays in the numpy table only (the
        # shared cached buffer is read-only, so rebind a doubled copy): the
        # cross-backend assertion must catch the (synthetic) divergence.
        evaluator._table.pair = evaluator._table.pair * 2.0
        free = [n for n in environment.nodes if n not in set(placement.values())]
        moved = {q for gate in circuit if gate.is_two_qubit for q in gate.qubits}
        with pytest.raises(AssertionError):
            for qubit in sorted(moved, key=repr):
                for node in free:
                    evaluator.runtime_with({qubit: node})
        # Full evaluations are cross-checked too, not just incremental ones.
        with pytest.raises(AssertionError, match="diverged"):
            evaluator.set_base(placement)

    @needs_native
    def test_full_recompute_detects_native_divergence(self):
        environment = trans_crotonic_acid()
        circuit = _random_circuit(4, 20, 9)
        placement = _random_placement(circuit, environment, 10)
        evaluator = RuntimeEvaluator(
            circuit, environment, backend="native", full_recompute=True
        )
        evaluator.set_base(placement)
        # Corrupt the kernel's single-qubit delay buffer (private to this
        # evaluator): the python cross-check must catch the divergence.
        for index in range(len(evaluator._native._single)):
            evaluator._native._single[index] *= 2.0
        with pytest.raises(AssertionError, match="diverged"):
            evaluator.set_base(placement)

    def test_empty_circuit(self, crotonic):
        circuit = QuantumCircuit(["a", "b"], [], name="empty")
        placement = {"a": "M", "b": "C1"}
        for evaluator in _evaluators(circuit, crotonic, False).values():
            assert evaluator.runtime(placement) == 0.0
            assert evaluator.set_base(placement) == 0.0
            assert evaluator.runtime_with({"a": "C4"}) == 0.0


@needs_numpy
class TestGatherCacheBound:
    def test_cap_evicts_without_changing_results(self, monkeypatch):
        environment = histidine()
        circuit = _random_circuit(8, 60, 21)
        placement = _random_placement(circuit, environment, 22)
        reference = RuntimeEvaluator(circuit, environment, backend="numpy")
        reference.set_base(placement)
        rng = random.Random(5)
        qubits = list(circuit.qubits)
        swaps = []
        for _ in range(40):
            a, b = rng.sample(qubits, 2)
            swaps.append({a: placement[b], b: placement[a]})
        # Reference values under the default (un-hit) cap...
        expected = [reference.runtime_with(swap) for swap in swaps]
        assert 4 < len(reference._table._gather_cache) <= (
            _replay.GATHER_CACHE_MAX_ENTRIES
        )
        # ...must be bit-identical under a cap small enough to churn.
        monkeypatch.setattr(_replay, "GATHER_CACHE_MAX_ENTRIES", 4)
        bounded = RuntimeEvaluator(circuit, environment, backend="numpy")
        bounded.set_base(placement)
        for swap, value in zip(swaps, expected):
            assert bounded.runtime_with(swap) == value
        assert len(bounded._table._gather_cache) <= 4
        # Re-missing an evicted key recomputes the exact same arrays.
        for swap, value in zip(swaps[:5], expected[:5]):
            assert bounded.runtime_with(swap) == value


class TestPairMatrixCache:
    @needs_numpy
    def test_shared_across_evaluators_with_hit_counter(self, crotonic):
        crotonic.invalidate_caches()
        circuit = _random_circuit(5, 30, 13)
        before = STATS.snapshot()
        first = RuntimeEvaluator(circuit, crotonic, backend="numpy")
        second = RuntimeEvaluator(circuit, crotonic, backend="numpy")
        delta = STATS.delta_since(before)
        assert delta.get("scheduler.pair_matrix_cache_misses") == 1
        assert delta.get("scheduler.pair_matrix_cache_hits") == 1
        # Zero-copy sharing: both tables view the same cached buffer.
        assert (
            first._table.pair.__array_interface__["data"][0]
            == second._table.pair.__array_interface__["data"][0]
        )
        assert not first._table.pair.flags.writeable

    def test_recalibration_invalidates(self, crotonic):
        flat = crotonic.pair_delay_table()
        assert crotonic.pair_delay_table() is flat
        crotonic.set_pair_delay("M", "C1", 123.0)
        rebuilt = crotonic.pair_delay_table()
        assert rebuilt is not flat
        nodes = crotonic.nodes
        count = len(nodes)
        i, j = nodes.index("M"), nodes.index("C1")
        assert rebuilt[i * count + j] == 123.0
        assert rebuilt[j * count + i] == 123.0

    def test_matches_pair_delay_for_every_entry(self, crotonic):
        nodes = crotonic.nodes
        count = len(nodes)
        flat = crotonic.pair_delay_table()
        for i, a in enumerate(nodes):
            for j, b in enumerate(nodes):
                assert flat[i * count + j] == crotonic.pair_delay(a, b)

    def test_dropped_from_pickles(self, crotonic):
        import pickle

        crotonic.pair_delay_table()
        clone = pickle.loads(pickle.dumps(crotonic))
        assert clone._pair_matrix_cache == {}


class TestPlacerLevelBackendParity:
    @pytest.mark.parametrize("threshold", [100.0, 200.0])
    def test_place_circuit_identical_across_backends(self, crotonic, threshold):
        results = {}
        for backend in AVAILABLE_BACKENDS:
            result = place_circuit(
                qft_circuit(6),
                crotonic,
                PlacementOptions(threshold=threshold, scheduler_backend=backend),
            )
            results[backend] = (
                result.total_runtime,
                [sorted(stage.placement.items(), key=lambda kv: repr(kv[0]))
                 for stage in result.stages],
                [swap.runtime for swap in result.swap_stages],
            )
        for backend in AVAILABLE_BACKENDS[1:]:
            assert results[backend] == results["python"]

    def test_invalid_backend_option_rejected(self):
        with pytest.raises(PlacementError, match="scheduler_backend"):
            PlacementOptions(scheduler_backend="gpu")

    def test_native_backend_option_accepted(self):
        assert PlacementOptions(scheduler_backend="native").scheduler_backend == (
            "native"
        )

    def test_runner_backend_override(self):
        from repro.analysis.runner import (
            ExperimentRunner,
            ExperimentSpec,
            benchmark_circuit_factory,
            molecule_factory,
        )

        spec = ExperimentSpec(
            circuit_factory=benchmark_circuit_factory("qft6"),
            environment_factory=molecule_factory("trans-crotonic-acid"),
            threshold=200.0,
        )
        outcomes = {}
        for backend in AVAILABLE_BACKENDS:
            runner = ExperimentRunner(scheduler_backend=backend)
            outcome = runner.run([spec])[0].raise_if_infeasible()
            outcomes[backend] = (outcome.runtime_seconds, outcome.num_subcircuits)
        for backend in AVAILABLE_BACKENDS[1:]:
            assert outcomes[backend] == outcomes["python"]
        with pytest.raises(ExperimentError, match="scheduler_backend"):
            ExperimentRunner(scheduler_backend="gpu")
