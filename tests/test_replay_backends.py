"""Backend parity for the scheduler replay engine.

The ``RuntimeEvaluator``'s numpy backend must be *bit-identical* to the
pure Python reference on every code path — full evaluation, incremental
tail replay, the branch-and-bound cutoff, and the ``full_recompute`` debug
mode — for randomized circuits, placements and moves.  These tests are the
in-process half of that contract; ``tests/test_determinism.py`` covers the
cross-process (``PYTHONHASHSEED`` x backend) half and the benchmark
harness gates the same property on the ``replay_*`` macro scenarios.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.circuits import gates as g
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.library import qft_circuit
from repro.core.config import PlacementOptions
from repro.core.placement import place_circuit
from repro.core.stats import STATS
from repro.exceptions import ExperimentError, PlacementError, ReproError
from repro.hardware.molecules import histidine, trans_crotonic_acid
from repro.timing import _replay
from repro.timing.scheduler import RuntimeEvaluator, circuit_runtime

needs_numpy = pytest.mark.skipif(
    not _replay.NUMPY_AVAILABLE, reason="numpy is not importable"
)

RELAXED = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _random_circuit(num_qubits, num_gates, seed):
    rng = random.Random(seed)
    qubits = list(range(num_qubits))
    gate_list = []
    for _ in range(num_gates):
        kind = rng.random()
        if kind < 0.45:
            a, b = rng.sample(qubits, 2)
            gate_list.append(g.zz(a, b, rng.choice([45.0, 90.0, 180.0])))
        elif kind < 0.8:
            gate_list.append(g.rx(rng.choice(qubits), rng.choice([90.0, 180.0])))
        else:
            gate_list.append(g.rz(rng.choice(qubits), 90.0))  # free gate
    return QuantumCircuit(qubits, gate_list, name=f"rand{seed}")


def _random_placement(circuit, environment, seed):
    rng = random.Random(seed)
    nodes = rng.sample(list(environment.nodes), circuit.num_qubits)
    return dict(zip(circuit.qubits, nodes))


def _evaluator_pair(circuit, environment, cap, **kwargs):
    python = RuntimeEvaluator(
        circuit, environment, apply_interaction_cap=cap,
        backend="python", **kwargs,
    )
    numpy = RuntimeEvaluator(
        circuit, environment, apply_interaction_cap=cap,
        backend="numpy", **kwargs,
    )
    assert python.backend == "python"
    assert numpy.backend == "numpy"
    return python, numpy


class TestResolveBackend:
    def test_explicit_choices_resolve_to_themselves(self):
        assert _replay.resolve_backend("python") == "python"
        if _replay.NUMPY_AVAILABLE:
            assert _replay.resolve_backend("numpy") == "numpy"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ReproError, match="unknown scheduler backend"):
            _replay.resolve_backend("fortran")

    @needs_numpy
    def test_auto_uses_profitability_threshold(self, monkeypatch):
        monkeypatch.delenv(_replay.BACKEND_ENV_VAR, raising=False)
        small = _replay.AUTO_NUMPY_MIN_OPS - 1
        assert _replay.resolve_backend("auto", num_ops=small) == "python"
        assert (
            _replay.resolve_backend("auto", num_ops=_replay.AUTO_NUMPY_MIN_OPS)
            == "numpy"
        )
        assert _replay.resolve_backend("auto", num_ops=None) == "numpy"

    @needs_numpy
    def test_env_var_overrides_auto(self, monkeypatch):
        monkeypatch.setenv(_replay.BACKEND_ENV_VAR, "numpy")
        assert _replay.resolve_backend("auto", num_ops=1) == "numpy"
        monkeypatch.setenv(_replay.BACKEND_ENV_VAR, "python")
        assert _replay.resolve_backend("auto", num_ops=10**6) == "python"

    def test_env_var_does_not_override_explicit_request(self, monkeypatch):
        monkeypatch.setenv(_replay.BACKEND_ENV_VAR, "numpy")
        assert _replay.resolve_backend("python") == "python"

    def test_invalid_env_var_rejected(self, monkeypatch):
        monkeypatch.setenv(_replay.BACKEND_ENV_VAR, "cuda")
        with pytest.raises(ReproError, match="REPRO_SCHEDULER_BACKEND"):
            _replay.resolve_backend("auto")

    def test_numpy_request_without_numpy_rejected(self, monkeypatch):
        monkeypatch.setattr(_replay, "NUMPY_AVAILABLE", False)
        with pytest.raises(ReproError, match="not importable"):
            _replay.resolve_backend("numpy")

    def test_auto_without_numpy_falls_back(self, monkeypatch):
        monkeypatch.delenv(_replay.BACKEND_ENV_VAR, raising=False)
        monkeypatch.setattr(_replay, "NUMPY_AVAILABLE", False)
        assert _replay.resolve_backend("auto", num_ops=10**6) == "python"


@needs_numpy
class TestBackendParity:
    @RELAXED
    @given(st.integers(0, 500), st.booleans())
    def test_full_evaluation_parity(self, seed, cap):
        environment = trans_crotonic_acid()
        circuit = _random_circuit(5, 28, seed)
        placement = _random_placement(circuit, environment, seed + 1)
        python, numpy = _evaluator_pair(circuit, environment, cap)
        expected = circuit_runtime(
            circuit, placement, environment,
            apply_interaction_cap=cap, validate=False,
        )
        assert python.runtime(placement) == expected
        assert numpy.runtime(placement) == expected
        assert python.set_base(placement) == numpy.set_base(placement) == expected

    @RELAXED
    @given(st.integers(0, 500))
    def test_incremental_and_cutoff_parity(self, seed):
        environment = trans_crotonic_acid()
        circuit = _random_circuit(5, 30, seed)
        placement = _random_placement(circuit, environment, seed + 1)
        python, numpy = _evaluator_pair(circuit, environment, True)
        base = python.set_base(placement)
        assert numpy.set_base(placement) == base
        used = set(placement.values())
        free = [n for n in environment.nodes if n not in used]
        for qubit in circuit.qubits:
            for node in free:
                overrides = {qubit: node}
                assert python.runtime_with(overrides) == numpy.runtime_with(
                    overrides
                )
                # The cutoff path must agree too (both inf or both exact).
                assert python.runtime_with(
                    overrides, limit=base
                ) == numpy.runtime_with(overrides, limit=base)
            for other in circuit.qubits:
                if other == qubit:
                    continue
                swap = {qubit: placement[other], other: placement[qubit]}
                assert python.runtime_with(swap) == numpy.runtime_with(swap)
        # The in-place duration scatter must leave the base state intact.
        first = circuit.qubits[0]
        assert numpy.runtime_with({first: placement[first]}) == base

    def test_replay_counters_identical(self):
        environment = trans_crotonic_acid()
        circuit = _random_circuit(5, 40, 11)
        placement = _random_placement(circuit, environment, 12)
        python, numpy = _evaluator_pair(circuit, environment, True)
        free = [n for n in environment.nodes if n not in set(placement.values())]
        deltas = []
        for evaluator in (python, numpy):
            before = STATS.snapshot()
            evaluator.set_base(placement)
            for qubit in circuit.qubits:
                for node in free:
                    evaluator.runtime_with({qubit: node})
                    evaluator.runtime_with(
                        {qubit: node}, limit=evaluator.base_runtime
                    )
            evaluator.flush_stats()
            deltas.append(STATS.delta_since(before))
        assert deltas[0] == deltas[1]

    def test_full_recompute_cross_checks_backends(self):
        environment = histidine()
        circuit = _random_circuit(6, 40, 3)
        placement = _random_placement(circuit, environment, 4)
        evaluator = RuntimeEvaluator(
            circuit, environment, apply_interaction_cap=True,
            backend="numpy", full_recompute=True,
        )
        evaluator.set_base(placement)
        free = [n for n in environment.nodes if n not in set(placement.values())]
        for qubit in circuit.qubits:
            for node in free:
                evaluator.runtime_with({qubit: node})

    def test_full_recompute_detects_divergence(self):
        environment = trans_crotonic_acid()
        circuit = _random_circuit(4, 20, 9)
        placement = _random_placement(circuit, environment, 10)
        evaluator = RuntimeEvaluator(
            circuit, environment, backend="numpy", full_recompute=True
        )
        evaluator.set_base(placement)
        # Corrupt one compiled pair delay in the numpy table only: the
        # cross-backend assertion must catch the (synthetic) divergence.
        evaluator._table.pair[:] = evaluator._table.pair * 2.0
        free = [n for n in environment.nodes if n not in set(placement.values())]
        moved = {q for gate in circuit if gate.is_two_qubit for q in gate.qubits}
        with pytest.raises(AssertionError):
            for qubit in sorted(moved, key=repr):
                for node in free:
                    evaluator.runtime_with({qubit: node})
        # Full evaluations are cross-checked too, not just incremental ones.
        with pytest.raises(AssertionError, match="diverged"):
            evaluator.set_base(placement)

    def test_empty_circuit(self, crotonic):
        circuit = QuantumCircuit(["a", "b"], [], name="empty")
        python, numpy = _evaluator_pair(circuit, crotonic, False)
        placement = {"a": "M", "b": "C1"}
        assert python.runtime(placement) == numpy.runtime(placement) == 0.0
        assert python.set_base(placement) == numpy.set_base(placement) == 0.0
        assert numpy.runtime_with({"a": "C4"}) == 0.0


@needs_numpy
class TestPlacerLevelBackendParity:
    @pytest.mark.parametrize("threshold", [100.0, 200.0])
    def test_place_circuit_identical_across_backends(self, crotonic, threshold):
        results = {}
        for backend in ("python", "numpy"):
            result = place_circuit(
                qft_circuit(6),
                crotonic,
                PlacementOptions(threshold=threshold, scheduler_backend=backend),
            )
            results[backend] = (
                result.total_runtime,
                [sorted(stage.placement.items(), key=lambda kv: repr(kv[0]))
                 for stage in result.stages],
                [swap.runtime for swap in result.swap_stages],
            )
        assert results["python"] == results["numpy"]

    def test_invalid_backend_option_rejected(self):
        with pytest.raises(PlacementError, match="scheduler_backend"):
            PlacementOptions(scheduler_backend="gpu")

    def test_runner_backend_override(self):
        from repro.analysis.runner import (
            ExperimentRunner,
            ExperimentSpec,
            benchmark_circuit_factory,
            molecule_factory,
        )

        spec = ExperimentSpec(
            circuit_factory=benchmark_circuit_factory("qft6"),
            environment_factory=molecule_factory("trans-crotonic-acid"),
            threshold=200.0,
        )
        outcomes = {}
        for backend in ("python", "numpy"):
            runner = ExperimentRunner(scheduler_backend=backend)
            outcome = runner.run([spec])[0].raise_if_infeasible()
            outcomes[backend] = (outcome.runtime_seconds, outcome.num_subcircuits)
        assert outcomes["python"] == outcomes["numpy"]
        with pytest.raises(ExperimentError, match="scheduler_backend"):
            ExperimentRunner(scheduler_backend="gpu")
