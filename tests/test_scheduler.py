"""Unit tests for the runtime models (the paper's DP algorithm)."""

import pytest

from repro.circuits import gates as g
from repro.circuits.circuit import QuantumCircuit
from repro.exceptions import PlacementError
from repro.timing.scheduler import (
    circuit_runtime,
    runtime_lower_bound,
    schedule,
    sequential_level_runtime,
)


class TestAsynchronousModel:
    def test_empty_circuit_runs_in_zero_time(self, acetyl):
        circuit = QuantumCircuit(["a"])
        assert circuit_runtime(circuit, {"a": "M"}, acetyl) == 0.0

    def test_single_qubit_gates_accumulate_per_qubit(self, acetyl):
        circuit = QuantumCircuit(["a"], [g.ry("a", 90.0), g.ry("a", 90.0)])
        assert circuit_runtime(circuit, {"a": "M"}, acetyl) == 16.0

    def test_two_qubit_gate_synchronises_qubits(self, acetyl):
        circuit = QuantumCircuit(
            ["a", "b"], [g.ry("a", 90.0), g.zz("a", "b", 90.0)]
        )
        runtime = circuit_runtime(circuit, {"a": "M", "b": "C1"}, acetyl)
        # b waits for a (8 units), then the interaction takes 38.
        assert runtime == 46.0

    def test_parallel_gates_overlap(self, acetyl):
        circuit = QuantumCircuit(
            ["a", "b", "c"], [g.ry("a", 90.0), g.ry("c", 90.0)]
        )
        runtime = circuit_runtime(
            circuit, {"a": "M", "b": "C1", "c": "C2"}, acetyl
        )
        assert runtime == 8.0  # M and C2 pulses run in parallel

    def test_paper_example3_suboptimal_mapping(self, acetyl, encoder_circuit):
        runtime = circuit_runtime(
            encoder_circuit, {"a": "M", "b": "C2", "c": "C1"}, acetyl
        )
        assert runtime == 770.0

    def test_paper_example3_optimal_mapping(self, acetyl, encoder_circuit):
        runtime = circuit_runtime(
            encoder_circuit, {"a": "C2", "b": "C1", "c": "M"}, acetyl
        )
        assert runtime == 136.0

    def test_validation_can_be_disabled(self, acetyl):
        circuit = QuantumCircuit(["a", "b"], [g.ry("a", 90.0)])
        # "b" is unplaced; with validation on this raises, with it off the
        # runtime of the placed gates is still computed.
        with pytest.raises(PlacementError):
            circuit_runtime(circuit, {"a": "M"}, acetyl)
        assert circuit_runtime(circuit, {"a": "M"}, acetyl, validate=False) == 8.0

    def test_interaction_cap_reduces_runtime(self, acetyl):
        circuit = QuantumCircuit(
            ["a", "b"], [g.zz("a", "b", 90.0) for _ in range(5)]
        )
        placement = {"a": "M", "b": "C1"}
        plain = circuit_runtime(circuit, placement, acetyl)
        capped = circuit_runtime(circuit, placement, acetyl, apply_interaction_cap=True)
        assert plain == 5 * 38.0
        assert capped == 3 * 38.0


class TestSchedule:
    def test_schedule_matches_runtime(self, acetyl, encoder_circuit):
        placement = {"a": "M", "b": "C2", "c": "C1"}
        result = schedule(encoder_circuit, placement, acetyl)
        assert result.runtime == circuit_runtime(encoder_circuit, placement, acetyl)

    def test_schedule_trace_reproduces_table1(self, acetyl, encoder_circuit):
        placement = {"a": "M", "b": "C2", "c": "C1"}
        result = schedule(encoder_circuit, placement, acetyl)
        # Table 1 columns: Ya90, ZZab90, Yc90, ZZbc90, Yb90.
        times_a = [step.qubit_times["a"] for step in result.steps]
        times_b = [step.qubit_times["b"] for step in result.steps]
        times_c = [step.qubit_times["c"] for step in result.steps]
        assert times_a == [8, 680, 680, 680, 680]
        assert times_b == [0, 680, 680, 769, 770]
        assert times_c == [0, 0, 8, 769, 769]

    def test_free_gates_skipped_from_trace(self, acetyl, encoder_circuit):
        placement = {"a": "M", "b": "C2", "c": "C1"}
        result = schedule(encoder_circuit, placement, acetyl)
        assert len(result.steps) == 5  # 9 gates, 4 of which are free Rz

    def test_busiest_qubit(self, acetyl, encoder_circuit):
        placement = {"a": "M", "b": "C2", "c": "C1"}
        result = schedule(encoder_circuit, placement, acetyl)
        assert result.busiest_qubit == "b"

    def test_final_qubit_times(self, acetyl, encoder_circuit):
        placement = {"a": "M", "b": "C2", "c": "C1"}
        final = schedule(encoder_circuit, placement, acetyl).final_qubit_times()
        assert final == {"a": 680, "b": 770, "c": 769}

    def test_all_free_circuit_reports_zero_busy_times(self, acetyl):
        """Regression: circuits of only free gates record no steps, but
        their qubits must still appear (with zero busy time)."""
        circuit = QuantumCircuit(
            ["a", "b"], [g.rz("a", 90.0), g.rz("b", 90.0), g.rz("a", 180.0)]
        )
        placement = {"a": "M", "b": "C1"}
        result = schedule(circuit, placement, acetyl)
        assert result.steps == ()
        assert result.final_qubit_times() == {"a": 0.0, "b": 0.0}
        assert result.busiest_qubit == "a"  # first in placement order on a tie
        assert result.runtime == 0.0

    def test_gateless_circuit_reports_zero_busy_times(self, acetyl):
        circuit = QuantumCircuit(["a", "b"])
        result = schedule(circuit, {"a": "M", "b": "C2"}, acetyl)
        assert result.final_qubit_times() == {"a": 0.0, "b": 0.0}
        assert result.busiest_qubit == "a"


class TestSequentialLevels:
    def test_sequential_at_least_asynchronous(self, acetyl, encoder_circuit):
        placement = {"a": "C2", "b": "C1", "c": "M"}
        asynchronous = circuit_runtime(encoder_circuit, placement, acetyl)
        sequential = sequential_level_runtime(encoder_circuit, placement, acetyl)
        assert sequential >= asynchronous

    def test_sequential_sums_level_maxima(self, acetyl):
        circuit = QuantumCircuit(
            ["a", "b", "c"],
            [g.ry("a", 90.0), g.ry("c", 90.0), g.zz("a", "b", 90.0)],
        )
        placement = {"a": "M", "b": "C1", "c": "C2"}
        # Level 1: max(8, 1) = 8; level 2: 38.
        assert sequential_level_runtime(circuit, placement, acetyl) == 46.0


class TestLowerBound:
    def test_lower_bound_below_every_placement(self, acetyl, encoder_circuit):
        bound = runtime_lower_bound(encoder_circuit, acetyl)
        assert bound <= 136.0
        assert bound > 0.0

    def test_lower_bound_zero_for_empty_circuit(self, acetyl):
        assert runtime_lower_bound(QuantumCircuit(["a"]), acetyl) == 0.0
