"""Unit tests for the benchmark circuit library (experiment E6 and friends)."""

import pytest

from repro.circuits.interaction_graph import interaction_graph
from repro.circuits.library import (
    CIRCUIT_FACTORIES,
    aqft9,
    aqft12,
    benchmark_circuit,
    benchmark_circuit_names,
    cat_state_circuit,
    phase_estimation_circuit,
    phaseest,
    pseudo_cat_state_10q,
    qec3_decoder,
    qec3_encode_decode,
    qec3_encoder,
    qec5_encoder,
    qec5_round,
    qft6,
    qft_circuit,
    steane_xz1,
    steane_xz2,
)
from repro.exceptions import CircuitError


class TestQec3Encoder:
    """Figure 2 of the paper, reproduced verbatim."""

    def test_gate_count_and_qubits(self):
        circuit = qec3_encoder()
        assert circuit.num_qubits == 3
        assert circuit.num_gates == 9
        assert circuit.num_two_qubit_gates == 2

    def test_gate_sequence_matches_figure2(self):
        names = [gate.name for gate in qec3_encoder()]
        assert names == ["Ry", "ZZ", "Rz", "Rz", "Ry", "ZZ", "Rz", "Rz", "Ry"]

    def test_interactions_are_ab_and_bc(self):
        graph = interaction_graph(qec3_encoder())
        assert set(map(frozenset, graph.edges())) == {
            frozenset({"a", "b"}),
            frozenset({"b", "c"}),
        }

    def test_decoder_reverses_encoder(self):
        encoder = qec3_encoder()
        decoder = qec3_decoder()
        assert decoder.num_gates == encoder.num_gates
        assert decoder[0].name == encoder[-1].name

    def test_encode_decode_doubles_gate_count(self):
        assert qec3_encode_decode().num_gates == 18


class TestQftFamily:
    def test_qft6_sizes(self):
        circuit = qft6()
        assert circuit.num_qubits == 6
        assert circuit.num_two_qubit_gates == 15  # complete graph K6

    def test_qft_interaction_graph_complete(self):
        graph = interaction_graph(qft6())
        assert graph.number_of_edges() == 15

    def test_aqft_drops_long_range_rotations(self):
        exact = qft_circuit(9)
        approx = aqft9()
        assert approx.num_two_qubit_gates < exact.num_two_qubit_gates

    def test_aqft12_has_twelve_qubits(self):
        assert aqft12().num_qubits == 12

    def test_qft_rotation_angles_halve_with_distance(self):
        circuit = qft_circuit(4)
        cphases = [gate for gate in circuit if gate.name == "CPHASE"]
        angles = sorted({gate.angle for gate in cphases}, reverse=True)
        assert angles == [90.0, 45.0, 22.5]

    def test_final_swaps_optional(self):
        with_swaps = qft_circuit(4, include_final_swaps=True)
        without = qft_circuit(4)
        assert with_swaps.num_gates == without.num_gates + 2

    def test_qft_too_small_rejected(self):
        with pytest.raises(CircuitError):
            qft_circuit(1)


class TestPhaseEstimation:
    def test_phaseest_is_five_qubits(self):
        circuit = phaseest()
        assert circuit.num_qubits == 5
        assert circuit.name == "phaseest"

    def test_counting_register_size_configurable(self):
        circuit = phase_estimation_circuit(3, 1)
        assert circuit.num_qubits == 4

    def test_every_counting_qubit_touches_the_eigenstate(self):
        graph = interaction_graph(phaseest())
        eigenstate = 4
        assert all(graph.has_edge(q, eigenstate) for q in range(4))

    def test_invalid_sizes_rejected(self):
        with pytest.raises(CircuitError):
            phase_estimation_circuit(0, 1)
        with pytest.raises(CircuitError):
            phase_estimation_circuit(3, 0)


class TestErrorCorrectionAndCatState:
    def test_qec5_sizes_match_table2(self):
        circuit = qec5_encoder()
        assert circuit.num_qubits == 5
        assert circuit.num_gates == 25

    def test_qec5_round_doubles(self):
        assert qec5_round().num_gates == 50

    def test_cat_state_sizes_match_table2(self):
        circuit = pseudo_cat_state_10q()
        assert circuit.num_qubits == 10
        assert 50 <= circuit.num_gates <= 56  # the paper reports 54

    def test_cat_state_interaction_graph_is_a_path(self):
        graph = interaction_graph(pseudo_cat_state_10q())
        degrees = sorted(d for _, d in graph.degree())
        assert degrees == [1, 1] + [2] * 8

    def test_cat_state_minimum_size(self):
        with pytest.raises(CircuitError):
            cat_state_circuit(1)

    def test_cat_state_custom_labels(self):
        circuit = cat_state_circuit(3, qubits=["x", "y", "z"])
        assert circuit.qubits == ("x", "y", "z")


class TestSteane:
    def test_both_variants_have_ten_qubits(self):
        assert steane_xz1().num_qubits == 10
        assert steane_xz2().num_qubits == 10

    def test_variant1_uses_twelve_data_couplings(self):
        circuit = steane_xz1()
        assert circuit.num_two_qubit_gates == 12

    def test_variant2_adds_ancilla_entanglement(self):
        graph = interaction_graph(steane_xz2())
        assert graph.has_edge("a0", "a1")
        assert graph.has_edge("a1", "a2")

    def test_variants_differ(self):
        assert steane_xz1().gates != steane_xz2().gates

    def test_invalid_variant_rejected(self):
        from repro.circuits.library.steane import steane_syndrome_circuit

        with pytest.raises(CircuitError):
            steane_syndrome_circuit(3)


class TestRegistry:
    def test_registry_contains_all_paper_circuits(self):
        expected = {
            "error-correction-encoding", "5-bit-error-correction",
            "pseudo-cat-state", "phaseest", "qft6", "aqft9", "aqft12",
            "steane-x/z1", "steane-x/z2",
        }
        assert set(CIRCUIT_FACTORIES) == expected

    def test_benchmark_circuit_lookup(self):
        assert benchmark_circuit("qft6").num_qubits == 6

    def test_unknown_circuit_raises(self):
        with pytest.raises(KeyError):
            benchmark_circuit("shor-2048")

    def test_names_sorted(self):
        assert benchmark_circuit_names() == sorted(CIRCUIT_FACTORIES)

    def test_all_registry_circuits_have_only_small_gates(self):
        for name in CIRCUIT_FACTORIES:
            circuit = benchmark_circuit(name)
            assert all(gate.num_qubits <= 2 for gate in circuit)
