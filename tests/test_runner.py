"""Tests of the experiment execution engine (``repro.analysis.runner``)."""

import pickle

import pytest

from repro.analysis.runner import (
    ExperimentRunner,
    ExperimentSpec,
    benchmark_circuit_factory,
    constant_environment,
    environment_cache_key,
    molecule_factory,
    run_experiments,
)
from repro.analysis.sweep import sweep_circuit
from repro.circuits.library import phaseest, qec3_encoder
from repro.core.config import PlacementOptions
from repro.core.stats import Counters, STATS
from repro.exceptions import ExperimentError
from repro.hardware.molecules import (
    acetyl_chloride,
    pentafluorobutadienyl_iron,
    trans_crotonic_acid,
)


def _restricted_molecule(name, keep):
    """Module-level (picklable) factory taking an unhashable list argument."""
    from repro.hardware.molecules import molecule

    return molecule(name).restricted_to(keep)


def _grid_specs(keep_result=False):
    """A small mixed grid: two molecules, one infeasible cell."""
    return [
        ExperimentSpec(
            circuit_factory=qec3_encoder,
            environment_factory=molecule_factory("acetyl-chloride"),
            threshold=100.0,
            label="qec3",
            keep_result=keep_result,
        ),
        ExperimentSpec(
            circuit_factory=phaseest,
            environment_factory=molecule_factory("trans-crotonic-acid"),
            threshold=200.0,
            label="phaseest",
            keep_result=keep_result,
        ),
        ExperimentSpec(
            circuit_factory=phaseest,
            environment_factory=pentafluorobutadienyl_iron,
            threshold=50.0,
            label="infeasible",
        ),
    ]


def _deterministic_fields(outcome):
    return (
        outcome.index,
        outcome.label,
        outcome.feasible,
        outcome.runtime_seconds,
        outcome.num_subcircuits,
        outcome.circuit_name,
        outcome.num_gates,
        outcome.num_qubits,
    )


class TestExperimentSpec:
    def test_specs_pickle_round_trip(self):
        for spec in _grid_specs():
            clone = pickle.loads(pickle.dumps(spec))
            assert clone.label == spec.label
            assert clone.threshold == spec.threshold

    def test_constant_environment_factory_pickles_and_compares_equal(self):
        factory = constant_environment(acetyl_chloride())
        clone = pickle.loads(pickle.dumps(factory))
        assert clone == factory
        assert hash(clone) == hash(factory)
        assert clone().name == "acetyl chloride"

    def test_resolved_options_threshold_override(self):
        spec = ExperimentSpec(
            circuit_factory=qec3_encoder,
            environment_factory=acetyl_chloride,
            threshold=123.0,
            options=PlacementOptions(fine_tuning=False),
        )
        options = spec.resolved_options()
        assert options.threshold == 123.0
        assert not options.fine_tuning

    def test_environment_cache_key_stability(self):
        # Module-level functions key by themselves; partials by contents.
        assert environment_cache_key(acetyl_chloride) is acetyl_chloride
        key_a = environment_cache_key(molecule_factory("histidine"))
        key_b = environment_cache_key(molecule_factory("histidine"))
        assert key_a == key_b

    def test_environment_cache_key_unhashable_partial_returns_none(self):
        from functools import partial

        # A picklable but unhashable-argument partial must fall back to
        # "no caching", not crash key construction.
        assert environment_cache_key(partial(dict, [("a", 1)])) is None

    def test_parallel_run_with_unhashable_partial_factory(self):
        from functools import partial

        specs = [
            ExperimentSpec(
                circuit_factory=qec3_encoder,
                environment_factory=partial(
                    _restricted_molecule, "trans-crotonic-acid", ["M", "C1", "C2", "C3"]
                ),
                threshold=200.0,
                label=f"cell {index}",
            )
            for index in range(2)
        ]
        outcomes = run_experiments(specs, jobs=2)
        assert all(outcome.feasible for outcome in outcomes)

    def test_benchmark_circuit_factory_is_picklable(self):
        factory = benchmark_circuit_factory("phaseest")
        clone = pickle.loads(pickle.dumps(factory))
        assert clone().name == factory().name


class TestSerialRunner:
    def test_outcomes_in_spec_order_with_infeasible_cells(self):
        outcomes = run_experiments(_grid_specs())
        assert [outcome.label for outcome in outcomes] == [
            "qec3",
            "phaseest",
            "infeasible",
        ]
        assert outcomes[0].feasible and outcomes[1].feasible
        assert not outcomes[2].feasible
        assert outcomes[2].runtime_seconds is None
        assert outcomes[2].error

    def test_progress_callback_sees_every_cell(self):
        seen = []
        runner = ExperimentRunner(
            jobs=1, progress=lambda done, total, outcome: seen.append((done, total))
        )
        runner.run(_grid_specs())
        assert seen == [(1, 3), (2, 3), (3, 3)]

    def test_keep_result_ships_placement_result(self):
        outcomes = run_experiments(_grid_specs(keep_result=True))
        assert outcomes[0].result is not None
        assert outcomes[0].result.num_subcircuits == outcomes[0].num_subcircuits
        # keep_result=False cells travel light.
        assert outcomes[2].result is None

    def test_empty_grid(self):
        assert ExperimentRunner(jobs=4).run([]) == []

    def test_jobs_below_one_rejected(self):
        with pytest.raises(ExperimentError):
            ExperimentRunner(jobs=0)


class TestParallelRunner:
    def test_parallel_matches_serial(self):
        serial = run_experiments(_grid_specs())
        parallel = run_experiments(_grid_specs(), jobs=2)
        assert [_deterministic_fields(o) for o in serial] == [
            _deterministic_fields(o) for o in parallel
        ]

    def test_parallel_progress_counts_to_total(self):
        seen = []
        runner = ExperimentRunner(
            jobs=2, progress=lambda done, total, outcome: seen.append((done, total))
        )
        runner.run(_grid_specs())
        assert len(seen) == 3
        assert seen[-1] == (3, 3)

    def test_worker_counters_merge_into_parent(self):
        before = STATS.snapshot()
        run_experiments(_grid_specs(), jobs=2)
        delta = STATS.delta_since(before)
        assert delta.get("monomorphism.searches", 0) > 0
        assert delta.get("scheduler.full_evals", 0) > 0

    def test_unpicklable_spec_raises_experiment_error(self):
        spec = ExperimentSpec(
            circuit_factory=lambda: qec3_encoder(),
            environment_factory=acetyl_chloride,
            label="lambda cell",
        )
        with pytest.raises(ExperimentError, match="pickled"):
            ExperimentRunner(jobs=2).run([spec, spec])

    def test_single_cell_grid_runs_in_process(self):
        # One cell never pays process start-up, even with jobs=4 — so even
        # unpicklable factories work.
        outcomes = ExperimentRunner(jobs=4).run(
            [
                ExperimentSpec(
                    circuit_factory=lambda: qec3_encoder(),
                    environment_factory=acetyl_chloride,
                    threshold=100.0,
                )
            ]
        )
        assert len(outcomes) == 1 and outcomes[0].feasible


class TestCountersMerge:
    def test_merge_adds_counts(self):
        counters = Counters()
        counters.increment("a", 2)
        counters.merge({"a": 3, "b": 1, "c": 0})
        assert counters.get("a") == 5
        assert counters.get("b") == 1
        assert counters.get("c") == 0  # zero entries are not materialised

    def test_merge_is_order_free(self):
        one, two = Counters(), Counters()
        deltas = [{"x": 1}, {"x": 2, "y": 5}, {"y": 1}]
        for delta in deltas:
            one.merge(delta)
        for delta in reversed(deltas):
            two.merge(delta)
        assert one.snapshot() == two.snapshot()

    def test_counters_pickle_round_trip(self):
        counters = Counters()
        counters.increment("monomorphism.searches", 7)
        clone = pickle.loads(pickle.dumps(counters))
        assert clone.snapshot() == counters.snapshot()


class TestOutcomeErrors:
    def test_raise_if_infeasible_restores_exception_type(self):
        from repro.exceptions import ThresholdError

        outcomes = run_experiments(_grid_specs())
        infeasible = outcomes[2]
        assert infeasible.error_type == "ThresholdError"
        with pytest.raises(ThresholdError, match="infeasible"):
            infeasible.raise_if_infeasible()
        # Feasible outcomes pass through for chaining.
        assert outcomes[0].raise_if_infeasible() is outcomes[0]

    def test_outcomes_carry_environment_metadata(self):
        outcomes = run_experiments(_grid_specs())
        assert outcomes[0].environment_name == "acetyl chloride"
        assert outcomes[0].environment_qubits == 3


class TestParentProcessCache:
    def test_serial_runs_do_not_grow_the_environment_cache(self):
        from repro.analysis import runner as runner_module

        before = len(runner_module._ENVIRONMENT_CACHE)
        for _ in range(3):
            sweep_circuit(qec3_encoder, acetyl_chloride(), thresholds=(100.0,))
        assert len(runner_module._ENVIRONMENT_CACHE) == before


class TestSweepParallelParity:
    def test_sweep_circuit_jobs_parity(self):
        thresholds = (100.0, 200.0, 1000.0)
        serial = sweep_circuit(
            phaseest, trans_crotonic_acid(), thresholds=thresholds, jobs=1
        )
        parallel = sweep_circuit(
            phaseest, trans_crotonic_acid(), thresholds=thresholds, jobs=2
        )
        assert [
            (c.threshold, c.runtime_seconds, c.num_subcircuits) for c in serial.cells
        ] == [
            (c.threshold, c.runtime_seconds, c.num_subcircuits) for c in parallel.cells
        ]

    def test_sweep_table_matches_per_environment_sweeps(self):
        from repro.analysis.sweep import sweep_table

        environments = [acetyl_chloride(), trans_crotonic_acid()]
        thresholds = (100.0, 1000.0)
        table = sweep_table(qec3_encoder, environments, thresholds=thresholds, jobs=2)
        assert [row.environment_name for row in table] == [
            "acetyl chloride",
            "trans-crotonic acid",
        ]
        for environment, row in zip(environments, table):
            expected = sweep_circuit(qec3_encoder, environment, thresholds=thresholds)
            assert [
                (c.threshold, c.runtime_seconds, c.num_subcircuits) for c in row.cells
            ] == [
                (c.threshold, c.runtime_seconds, c.num_subcircuits)
                for c in expected.cells
            ]
