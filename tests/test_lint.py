"""Unit tests for the repro.lint static analyzer.

One class per rule family, each exercising the four fixture flavours the
suite standardises on: a *positive* snippet the rule must flag, a
*negative* snippet it must not, the positive snippet with an inline
``# repro: allow[CODE]`` suppression, and the positive snippet absorbed
by a baseline entry.  Engine and baseline semantics get their own
classes, and a self-check keeps ``src/repro/lint`` clean under its own
rules.
"""

import textwrap
from pathlib import Path

import pytest

from repro.lint import (
    Diagnostic,
    RULES,
    analyze_source,
    baseline_key,
    compare_to_baseline,
    lint_paths,
    lint_source,
    load_baseline,
    module_name_for,
    render_baseline,
    rules_by_code,
    suppressed_lines,
    write_baseline,
)
from repro.lint.baseline import BaselineError
from repro.lint.engine import profile_for_path
from repro.lint.scopes import PROFILE_RELAXED

REPO_ROOT = Path(__file__).resolve().parent.parent


def codes(source, module):
    """The rule codes flagged for a dedented snippet under ``module``."""
    return [d.code for d in lint_source(textwrap.dedent(source), module)]


class TestDET001SetIteration:
    def test_flags_for_loop_over_set_literal(self):
        assert codes("for x in {1, 2}:\n    print(x)\n", "repro.core.x") == ["DET001"]

    def test_flags_comprehension_over_set_call(self):
        assert codes("rows = [x for x in set(items)]\n", "repro.api") == ["DET001"]

    def test_ignores_iteration_over_list(self):
        assert codes("for x in [1, 2]:\n    print(x)\n", "repro.core.x") == []

    def test_ignores_sorted_set(self):
        assert codes("for x in sorted({1, 2}):\n    print(x)\n", "repro.api") == []

    def test_ignores_modules_off_the_output_path(self):
        assert codes("for x in {1, 2}:\n    print(x)\n", "tools.scratch") == []

    def test_inline_suppression(self):
        source = "for x in {1, 2}:  # repro: allow[DET001]\n    print(x)\n"
        assert codes(source, "repro.core.x") == []


class TestDET002ReprTieBreak:
    def test_flags_sorted_key_repr(self):
        assert codes("order = sorted(nodes, key=repr)\n", "repro.api") == ["DET002"]

    def test_flags_min_with_repr_in_lambda(self):
        source = "best = min(nodes, key=lambda n: (cost[n], repr(n)))\n"
        assert codes(source, "repro.routing.x") == ["DET002"]

    def test_ignores_value_keys(self):
        assert codes("order = sorted(nodes, key=len)\n", "repro.api") == []

    def test_sanctioned_in_the_canonical_order_module(self):
        source = "order = sorted(nodes, key=repr)\n"
        assert codes(source, "repro.core._bitset") == []

    def test_inline_suppression(self):
        source = "order = sorted(nodes, key=repr)  # repro: allow[DET002]\n"
        assert codes(source, "repro.api") == []


class TestDET003HashOnFingerprintPath:
    def test_flags_builtin_hash_in_fingerprint_module(self):
        assert codes("token = hash(spec)\n", "repro.analysis.sharding") == ["DET003"]

    def test_ignores_hash_outside_fingerprint_modules(self):
        assert codes("token = hash(spec)\n", "repro.routing.x") == []

    def test_ignores_dunder_hash_definitions(self):
        source = """
        class Spec:
            def __hash__(self):
                return hash((self.a, self.b))
        """
        assert codes(source, "repro.analysis.sharding") == []

    def test_hashlib_is_not_flagged(self):
        source = "import hashlib\ndigest = hashlib.sha256(b'x').hexdigest()\n"
        assert codes(source, "repro.analysis.serialization") == []


class TestDET004GlobalRandom:
    def test_flags_global_random_calls(self):
        source = "import random\nvalue = random.random()\n"
        assert codes(source, "repro.core.x") == ["DET004"]

    def test_flags_unseeded_random_instance(self):
        source = "import random\nrng = random.Random()\n"
        assert codes(source, "repro.core.x") == ["DET004"]

    def test_seeded_private_instance_is_sanctioned(self):
        source = "import random\nrng = random.Random(derived_seed)\n"
        assert codes(source, "repro.core.x") == []


class TestDET005WallClock:
    def test_flags_time_time_in_fingerprint_module(self):
        source = "import time\nstamp = time.time()\n"
        assert codes(source, "repro.analysis.serialization") == ["DET005"]

    def test_flags_uuid4_in_persistence_module(self):
        source = "import uuid\ntoken = uuid.uuid4()\n"
        assert codes(source, "repro.hardware.io") == ["DET005"]

    def test_wall_clock_off_the_serialised_path_is_fine(self):
        source = "import time\nstamp = time.time()\n"
        assert codes(source, "repro.routing.x") == []

    def test_durations_via_monotonic_are_sanctioned(self):
        source = "import time\nstart = time.monotonic()\n"
        assert codes(source, "repro.analysis.serialization") == []


class TestROB001DirectWrites:
    def test_flags_open_for_write_in_persistence_module(self):
        source = "with open(path, 'w') as fh:\n    fh.write(text)\n"
        assert codes(source, "repro.hardware.io") == ["ROB001"]

    def test_ignores_reads(self):
        source = "with open(path) as fh:\n    text = fh.read()\n"
        assert codes(source, "repro.hardware.io") == []

    def test_ignores_non_persistence_modules(self):
        source = "with open(path, 'w') as fh:\n    fh.write(text)\n"
        assert codes(source, "repro.routing.x") == []

    def test_serialization_itself_is_sanctioned(self):
        # atomic_write_bytes must be able to open its own temp files.
        source = "with open(path, 'wb') as fh:\n    fh.write(data)\n"
        assert codes(source, "repro.analysis.serialization") == []

    def test_inline_suppression(self):
        source = "handle = open(path, 'a')  # repro: allow[ROB001]\n"
        assert codes(source, "repro.hardware.io") == []


class TestROB002SwallowedExceptions:
    def test_flags_silent_broad_except(self):
        source = """
        try:
            work()
        except Exception:
            pass
        """
        assert codes(source, "repro.analysis.x") == ["ROB002"]

    def test_reraise_is_fine(self):
        source = """
        try:
            work()
        except Exception as exc:
            raise RuntimeError("context") from exc
        """
        assert codes(source, "repro.analysis.x") == []

    def test_counter_recording_is_fine(self):
        source = """
        try:
            work()
        except Exception:
            STATS.increment("fallbacks")
        """
        assert codes(source, "repro.analysis.x") == []

    def test_narrow_except_is_fine(self):
        source = """
        try:
            work()
        except KeyError:
            pass
        """
        assert codes(source, "repro.analysis.x") == []


class TestROB003UnverifiedPickle:
    def test_flags_pickle_load_outside_shard_readers(self):
        source = "import pickle\nobj = pickle.load(fh)\n"
        assert codes(source, "repro.core.x") == ["ROB003"]

    def test_sharding_module_is_sanctioned(self):
        source = "import pickle\nobj = pickle.load(fh)\n"
        assert codes(source, "repro.analysis.sharding") == []

    def test_pickle_dumps_is_not_flagged(self):
        source = "import pickle\nblob = pickle.dumps(obj)\n"
        assert codes(source, "repro.core.x") == []


class TestPAR001SubmittedCallables:
    def test_flags_lambda_submitted_to_a_pool(self):
        source = "future = pool.submit(lambda: work())\n"
        assert codes(source, "repro.analysis.x") == ["PAR001"]

    def test_flags_nested_def_submitted_to_a_pool(self):
        source = """
        def run(pool):
            def task():
                return 1
            return pool.submit(task)
        """
        assert codes(source, "repro.analysis.x") == ["PAR001"]

    def test_flags_lambda_factory_keyword(self):
        source = "spec = replace(spec, circuit_factory=lambda: build())\n"
        assert codes(source, "repro.analysis.x") == ["PAR001"]

    def test_module_level_def_is_fine(self):
        source = """
        def task():
            return 1

        def run(pool):
            return pool.submit(task)
        """
        assert codes(source, "repro.analysis.x") == []

    def test_inline_suppression(self):
        source = "future = pool.submit(lambda: 1)  # repro: allow[PAR001]\n"
        assert codes(source, "repro.analysis.x") == []


class TestPAR002WorkerMutatesModuleState:
    def test_flags_global_assignment_in_a_worker(self):
        source = """
        COUNTER = 0

        def worker(x):
            global COUNTER
            COUNTER = COUNTER + x
            return x

        def run(pool):
            return pool.submit(worker, 1)
        """
        assert codes(source, "repro.analysis.x") == ["PAR002"]

    def test_flags_subscript_write_to_a_module_dict(self):
        source = """
        CACHE = {}

        def worker(x):
            CACHE[x] = True
            return x

        def run(pool):
            return pool.submit(worker, 1)
        """
        assert codes(source, "repro.analysis.x") == ["PAR002"]

    def test_stats_counters_are_sanctioned(self):
        source = """
        STATS = make_stats()

        def worker(x):
            STATS.counters[x] = 1
            return x

        def run(pool):
            return pool.submit(worker, 1)
        """
        assert codes(source, "repro.analysis.x") == []

    def test_unsubmitted_functions_are_not_workers(self):
        source = """
        CACHE = {}

        def helper(x):
            CACHE[x] = True
        """
        assert codes(source, "repro.analysis.x") == []

    def test_local_mutation_is_fine(self):
        source = """
        def worker(x):
            local = {}
            local[x] = True
            return local

        def run(pool):
            return pool.submit(worker, 1)
        """
        assert codes(source, "repro.analysis.x") == []


class TestSuppressionSpans:
    """Inline allows on multi-line statements (span-aware matching)."""

    def test_allow_on_the_first_line_of_a_multiline_statement(self):
        source = (
            "import time\n"
            "payload = build(  # repro: allow[DET005]\n"
            "    time.time(),\n"
            ")\n"
        )
        assert codes(source, "repro.analysis.serialization") == []

    def test_allow_on_the_closing_line_of_a_simple_statement(self):
        source = (
            "order = sorted(\n"
            "    nodes,\n"
            "    key=repr,\n"
            ")  # repro: allow[DET002]\n"
        )
        assert codes(source, "repro.api") == []

    def test_allow_on_an_interior_line_of_the_flagged_node(self):
        source = (
            "order = sorted(\n"
            "    nodes,\n"
            "    key=repr,  # repro: allow[DET002]\n"
            ")\n"
        )
        assert codes(source, "repro.api") == []

    def test_allow_in_a_compound_body_does_not_blanket_the_header(self):
        source = """
        try:
            work()
        except Exception:
            pass  # repro: allow[ROB002]
        """
        assert codes(source, "repro.analysis.x") == ["ROB002"]

    def test_allow_on_the_except_header_works(self):
        source = """
        try:
            work()
        except Exception:  # repro: allow[ROB002]
            pass
        """
        assert codes(source, "repro.analysis.x") == []

    def test_unrelated_code_on_the_same_line_does_not_suppress(self):
        source = "order = sorted(nodes, key=repr)  # repro: allow[DET001]\n"
        assert codes(source, "repro.api") == ["DET002"]


class TestProfiles:
    def test_scripts_and_benchmarks_lint_relaxed(self):
        assert profile_for_path("scripts/run_bench.py") == PROFILE_RELAXED
        assert profile_for_path("benchmarks/suite.py") == PROFILE_RELAXED
        assert profile_for_path("src/repro/api.py") == "strict"

    def test_relaxed_runs_determinism_rules_unconditionally(self):
        analysis = analyze_source(
            "for x in {1, 2}:\n    print(x)\n",
            "run_bench",  # bare stem: no scope predicate covers it
            profile=PROFILE_RELAXED,
        )
        assert [d.code for d in analysis.diagnostics] == ["DET001"]

    def test_relaxed_skips_scope_sensitive_rules(self):
        analysis = analyze_source(
            "import pickle\nobj = pickle.load(fh)\n",
            "run_bench",
            profile=PROFILE_RELAXED,
        )
        assert analysis.diagnostics == []

    def test_strict_profile_ignores_bare_stems(self):
        assert codes("for x in {1, 2}:\n    print(x)\n", "run_bench") == []


class TestEngine:
    def test_module_name_for_strips_src_prefix(self):
        assert module_name_for("src/repro/timing/trace.py") == "repro.timing.trace"

    def test_module_name_for_init_is_the_package(self):
        assert module_name_for("src/repro/lint/__init__.py") == "repro.lint"

    def test_suppressed_lines_parses_multiple_codes(self):
        lines = suppressed_lines("x = 1  # repro: allow[DET001, ROB002]\n")
        assert lines == {1: frozenset({"DET001", "ROB002"})}

    def test_syntax_error_yields_parse_diagnostic(self):
        diagnostics = lint_source("def broken(:\n", "repro.core.x")
        assert [d.code for d in diagnostics] == ["PARSE"]

    def test_diagnostics_are_ordered_and_formatted(self):
        source = "a = sorted(xs, key=repr)\nb = sorted(ys, key=repr)\n"
        diagnostics = lint_source(source, "repro.api", path="m.py")
        assert [d.line for d in diagnostics] == [1, 2]
        assert diagnostics[0].format().startswith("m.py:1:")

    def test_every_rule_has_a_distinct_code(self):
        assert len(rules_by_code()) == len(RULES)


class TestBaseline:
    def _diag(self, line=1):
        return Diagnostic(
            path="src/repro/x.py", line=line, col=0, code="DET001", message="m"
        )

    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "lint_baseline.json")
        write_baseline([self._diag(1), self._diag(5)], path)
        assert load_baseline(path) == {"src/repro/x.py::DET001": 2}

    def test_missing_file_is_empty(self, tmp_path):
        assert load_baseline(str(tmp_path / "absent.json")) == {}

    def test_corrupt_file_raises(self, tmp_path):
        path = tmp_path / "lint_baseline.json"
        path.write_text("{\"format\": \"something-else\", \"entries\": {}}")
        with pytest.raises(BaselineError):
            load_baseline(str(path))

    def test_ratchet_absorbs_exactly_the_baselined_count(self):
        findings = [self._diag(1), self._diag(5)]
        fresh, stale = compare_to_baseline(findings, {baseline_key(findings[0]): 1})
        assert [d.line for d in fresh] == [5]
        assert stale == []

    def test_new_findings_are_fresh_with_empty_baseline(self):
        fresh, stale = compare_to_baseline([self._diag()], {})
        assert len(fresh) == 1 and stale == []

    def test_fixed_findings_make_the_entry_stale(self):
        fresh, stale = compare_to_baseline([], {"src/repro/x.py::DET001": 2})
        assert fresh == []
        assert stale == ["src/repro/x.py::DET001"]

    def test_render_is_canonical_json(self):
        text = render_baseline([self._diag()])
        assert text.endswith("\n")
        assert "\"src/repro/x.py::DET001\": 1" in text


class TestSelfCheck:
    def test_lint_package_passes_its_own_rules(self):
        diagnostics = lint_paths(
            [str(REPO_ROOT / "src" / "repro" / "lint")], root=str(REPO_ROOT)
        )
        assert diagnostics == [], [d.format() for d in diagnostics]
