"""Tests of the placement-verification machinery (and with it, end-to-end correctness)."""

import pytest

from repro.circuits import gates as g
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.library import phaseest, qec3_encoder, qft_circuit
from repro.core.config import PlacementOptions
from repro.core.placement import place_circuit
from repro.core.result import PlacementResult
from repro.exceptions import SimulationError
from repro.simulation.verify import verify_placement, verify_routing_layers


class TestVerifyRoutingLayers:
    def test_correct_layers_accepted(self):
        layers = [[(0, 1)], [(1, 2)]]
        # Token at 0 travels to 2; tokens at 1 and 2 shift back.
        assert verify_routing_layers(layers, {0: 2, 1: 0, 2: 1})

    def test_incorrect_layers_rejected(self):
        layers = [[(0, 1)]]
        assert not verify_routing_layers(layers, {0: 2, 2: 0, 1: 1})

    def test_empty_layers_identity(self):
        assert verify_routing_layers([], {0: 0, 1: 1})


class TestVerifyPlacement:
    def test_encoder_on_acetyl(self, acetyl, encoder_circuit):
        result = place_circuit(encoder_circuit, acetyl)
        report = verify_placement(encoder_circuit, result, acetyl)
        assert report.equivalent
        assert report.worst_fidelity == pytest.approx(1.0, abs=1e-6)
        assert report.num_states_tested >= 4

    def test_multistage_phaseest_on_crotonic(self, crotonic):
        circuit = phaseest()
        result = place_circuit(circuit, crotonic, PlacementOptions(threshold=100.0))
        assert result.num_subcircuits > 1  # exercise the SWAP stages
        report = verify_placement(circuit, result, crotonic)
        assert report.equivalent

    def test_qft5_on_crotonic_low_threshold(self, crotonic):
        circuit = qft_circuit(5)
        result = place_circuit(circuit, crotonic, PlacementOptions(threshold=100.0))
        report = verify_placement(circuit, result, crotonic, num_random_states=1)
        assert report.equivalent

    def test_detects_corrupted_physical_circuit(self, acetyl, encoder_circuit):
        result = place_circuit(encoder_circuit, acetyl)
        corrupted_physical = result.physical_circuit.copy()
        corrupted_physical.append(g.pauli_x(acetyl.nodes[0]))
        corrupted = PlacementResult(
            circuit_name=result.circuit_name,
            environment_name=result.environment_name,
            threshold=result.threshold,
            stages=result.stages,
            swap_stages=result.swap_stages,
            physical_circuit=corrupted_physical,
            total_runtime=result.total_runtime,
            time_unit_seconds=result.time_unit_seconds,
        )
        report = verify_placement(encoder_circuit, corrupted, acetyl)
        assert not report.equivalent

    def test_too_large_environment_rejected(self, histidine_env):
        circuit = QuantumCircuit(range(2), [g.cnot(0, 1)])
        # Histidine has 12 nodes, within the limit; build a fake larger one.
        from repro.hardware.architectures import linear_chain

        big = linear_chain(15)
        result = place_circuit(circuit, big, PlacementOptions(threshold=10.0))
        with pytest.raises(SimulationError):
            verify_placement(circuit, result, big)
