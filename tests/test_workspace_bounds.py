"""Tests for the bounded-workspace extraction strategy."""

import networkx as nx
import pytest

from repro.circuits import gates as g
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.library import qft_circuit
from repro.core.config import PlacementOptions
from repro.core.placement import place_circuit
from repro.core.workspace import extract_workspaces
from repro.exceptions import PlacementError
from repro.simulation.verify import verify_placement


class TestBoundedExtraction:
    def test_cap_splits_long_runs(self):
        host = nx.path_graph(3)
        circuit = QuantumCircuit(["a", "b"], [g.zz("a", "b") for _ in range(6)])
        workspaces = extract_workspaces(circuit, host, max_two_qubit_gates=2)
        assert len(workspaces) == 3
        assert all(ws.num_two_qubit_gates == 2 for ws in workspaces)

    def test_cap_of_one_gives_one_gate_per_workspace(self):
        host = nx.path_graph(4)
        circuit = QuantumCircuit(
            ["a", "b", "c"], [g.zz("a", "b"), g.zz("b", "c"), g.zz("a", "b")]
        )
        workspaces = extract_workspaces(circuit, host, max_two_qubit_gates=1)
        assert len(workspaces) == 3

    def test_invalid_cap_rejected(self):
        host = nx.path_graph(3)
        circuit = QuantumCircuit(["a", "b"], [g.zz("a", "b")])
        with pytest.raises(PlacementError):
            extract_workspaces(circuit, host, max_two_qubit_gates=0)

    def test_unbounded_matches_default(self):
        host = nx.path_graph(4)
        circuit = qft_circuit(4)
        default = extract_workspaces(circuit, host)
        unbounded = extract_workspaces(circuit, host, max_two_qubit_gates=None)
        assert [ws.start for ws in default] == [ws.start for ws in unbounded]

    def test_partition_still_covers_the_circuit(self):
        host = nx.path_graph(4)
        circuit = qft_circuit(4)
        workspaces = extract_workspaces(circuit, host, max_two_qubit_gates=2)
        assert workspaces[0].start == 0
        assert workspaces[-1].stop == circuit.num_gates
        for previous, current in zip(workspaces, workspaces[1:]):
            assert previous.stop == current.start


class TestPlacerIntegration:
    def test_bounded_workspaces_increase_stage_count(self, crotonic):
        greedy = place_circuit(
            qft_circuit(5), crotonic, PlacementOptions(threshold=100.0)
        )
        bounded = place_circuit(
            qft_circuit(5), crotonic,
            PlacementOptions(threshold=100.0, max_workspace_two_qubit_gates=2),
        )
        assert bounded.num_subcircuits >= greedy.num_subcircuits

    def test_bounded_workspaces_preserve_correctness(self, crotonic):
        circuit = qft_circuit(5)
        result = place_circuit(
            circuit, crotonic,
            PlacementOptions(threshold=100.0, max_workspace_two_qubit_gates=3),
        )
        report = verify_placement(circuit, result, crotonic, num_random_states=1)
        assert report.equivalent

    def test_invalid_option_rejected(self):
        with pytest.raises(PlacementError):
            PlacementOptions(max_workspace_two_qubit_gates=0)
