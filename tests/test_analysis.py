"""Tests of the experiment harnesses (Tables 2, 3 and 4 machinery)."""

import pytest

from repro.analysis.experiments import TABLE2_ROWS, run_table2
from repro.analysis.reporting import (
    format_runtime_and_stages,
    format_seconds,
    format_table,
    paper_vs_measured,
)
from repro.analysis.scalability import (
    SCALABILITY_OPTIONS,
    expected_hidden_stages,
    run_scalability_point,
    run_scalability_sweep,
)
from repro.analysis.sweep import sweep_circuit, sweep_environment, whole_circuit_reference
from repro.circuits.library import phaseest, qec3_encoder
from repro.core.config import PlacementOptions
from repro.hardware.molecules import (
    acetyl_chloride,
    pentafluorobutadienyl_iron,
    trans_crotonic_acid,
)


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["alpha", 1], ["b", 22]])
        lines = text.splitlines()
        assert "name" in lines[0]
        assert len(lines) == 4  # header, rule, two rows

    def test_format_table_with_title(self):
        text = format_table(["a"], [["x"]], title="My table")
        assert text.splitlines()[0] == "My table"

    def test_format_seconds(self):
        assert format_seconds(0.0136) == "0.0136 sec"
        assert format_seconds(None) == "N/A"

    def test_format_runtime_and_stages(self):
        assert format_runtime_and_stages(0.2237, 5) == "0.2237 sec (5)"
        assert format_runtime_and_stages(None, None) == "N/A"

    def test_paper_vs_measured(self):
        assert paper_vs_measured(0.5, 0.25) == "paper 0.5 / measured 0.25"
        assert paper_vs_measured(None, 1.0) == "paper N/A / measured 1"


class TestTable2Harness:
    def test_rows_cover_the_three_experiments(self):
        assert len(TABLE2_ROWS) == 3

    def test_run_table2_shapes(self):
        results = run_table2()
        assert len(results) == 3
        # Row 1: the acetyl chloride encoder reproduces the paper exactly.
        first = results[0]
        assert first.environment_name == "acetyl chloride"
        assert first.measured_runtime_seconds == pytest.approx(0.0136)
        assert first.search_space == 6
        # Every experimentally realised circuit is placed as one workspace.
        for row in results:
            assert row.num_subcircuits == 1
            assert row.measured_runtime_seconds > 0
        # Search-space sizes are exact combinatorial values.
        assert results[1].search_space == 2520
        assert results[2].search_space == 239_500_800


class TestSweepHarness:
    def test_sweep_row_cells_per_threshold(self):
        row = sweep_circuit(
            qec3_encoder, acetyl_chloride(), thresholds=(50.0, 100.0, 10000.0)
        )
        assert len(row.cells) == 3
        assert row.cell_at(100.0) is not None

    def test_infeasible_thresholds_reported_as_na(self):
        row = sweep_circuit(
            phaseest, pentafluorobutadienyl_iron(), thresholds=(50.0, 200.0)
        )
        assert not row.cells[0].feasible
        assert row.cells[0].formatted() == "N/A"
        assert row.cells[1].feasible

    def test_best_cell(self):
        row = sweep_circuit(
            phaseest, trans_crotonic_acid(), thresholds=(100.0, 10000.0)
        )
        best = row.best_cell()
        assert best is not None
        assert best.runtime_seconds == min(
            cell.runtime_seconds for cell in row.cells if cell.feasible
        )

    def test_sweep_environment_multiple_circuits(self):
        rows = sweep_environment(
            [qec3_encoder], acetyl_chloride(), thresholds=(100.0,)
        )
        assert len(rows) == 1
        assert rows[0].environment_name == "acetyl chloride"

    def test_whole_circuit_reference_positive(self):
        value = whole_circuit_reference(qec3_encoder, acetyl_chloride())
        assert value == pytest.approx(0.0136)


class TestScalabilityHarness:
    def test_expected_hidden_stages(self):
        assert expected_hidden_stages(8) == 3
        assert expected_hidden_stages(1024) == 10

    def test_single_point_recovers_hidden_stages(self):
        record = run_scalability_point(8, seed=1)
        assert record.num_qubits == 8
        assert record.hidden_stages == 3
        assert record.num_subcircuits == record.hidden_stages
        assert record.circuit_runtime_seconds > 0
        assert record.software_runtime_seconds > 0

    def test_sweep_monotone_runtime(self):
        records = run_scalability_sweep((8, 16), seed=2)
        assert records[0].circuit_runtime_seconds < records[1].circuit_runtime_seconds
        assert records[0].num_gates < records[1].num_gates

    def test_scalability_options_disable_expensive_heuristics(self):
        assert not SCALABILITY_OPTIONS.fine_tuning
        assert not SCALABILITY_OPTIONS.lookahead
