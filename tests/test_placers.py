"""Tests of the pluggable placer portfolio (:mod:`repro.core.placers`).

Covers the ABC contract for all three engines, the registry/CLI/config
round trip of placer specs, the annealer's never-worse-than-its-seed
property, exact-vs-anneal parity on tiny hosts, the per-placer STATS
counters, end-to-end Session + sharded execution, and (in subprocesses,
mirroring ``test_determinism.py``) hash-seed and worker-count
independence of the heuristic engines.
"""

import json
import math
import os
import subprocess
import sys
from pathlib import Path
from types import SimpleNamespace
from unittest import mock

import pytest

from repro.analysis import sharding
from repro.analysis.serialization import deterministic_rows
from repro.api import Session
from repro.circuits.library import qft6
from repro.cli import main
from repro.config import RunConfig
from repro.core.config import PlacementOptions
from repro.core.placement import place_circuit
from repro.core.placers import (
    AnnealPlacer,
    ExactPlacer,
    GreedyPlacer,
    MultiRestartAnnealPlacer,
    Placer,
    WorkspacePlacer,
)
from repro.core.result import PlacementResult
from repro.core.stats import STATS
from repro.exceptions import ConfigError, PlacementError, UnknownSpecError
from repro.hardware.architectures import grid
from repro.hardware.molecules import trans_crotonic_acid
from repro.registry import PLACERS, load_circuit

REPO_SRC = Path(__file__).resolve().parent.parent / "src"

#: One spec per engine, annealer with a small fixed budget to keep tests fast.
ENGINE_SPECS = ("exact", "greedy", "anneal:0x150")


def _stage_fingerprint(result: PlacementResult):
    return (
        result.total_runtime,
        [
            sorted((repr(q), repr(n)) for q, n in stage.placement.items())
            for stage in result.stages
        ],
    )


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


class TestPlacerRegistry:
    def test_builds_every_engine(self):
        assert isinstance(PLACERS.build("exact"), ExactPlacer)
        assert isinstance(PLACERS.build("greedy"), GreedyPlacer)
        assert isinstance(PLACERS.build("anneal"), AnnealPlacer)

    def test_every_engine_is_a_placer(self):
        for spec in ENGINE_SPECS:
            placer = PLACERS.build(spec)
            assert isinstance(placer, Placer)
            assert isinstance(placer, WorkspacePlacer)

    def test_anneal_spec_parameters(self):
        default = PLACERS.build("anneal")
        assert default.seed == 0
        seeded = PLACERS.build("anneal:7")
        assert (seeded.seed, seeded.iterations) == (7, default.iterations)
        full = PLACERS.build("anneal:7x500")
        assert (full.seed, full.iterations) == (7, 500)

    def test_unknown_spec_lists_valid_names(self):
        with pytest.raises(UnknownSpecError, match="exact.*greedy.*anneal"):
            PLACERS.build("bogus")

    def test_parameter_arity_errors(self):
        with pytest.raises(UnknownSpecError, match="takes no parameters"):
            PLACERS.build("greedy:3")
        with pytest.raises(UnknownSpecError, match="parameter"):
            PLACERS.build("anneal:1x2x3")

    def test_validate_does_not_build(self):
        entry = PLACERS.validate("anneal:3x100")
        assert entry.name == "anneal"
        with pytest.raises(UnknownSpecError):
            PLACERS.validate("anneal:1x2x3")

    def test_options_validate_placer_at_construction(self):
        with pytest.raises(UnknownSpecError, match="valid specs"):
            PlacementOptions(placer="bogus")
        with pytest.raises(PlacementError, match="non-empty"):
            PlacementOptions(placer="")

    def test_anneal_rejects_negative_parameters(self):
        with pytest.raises(PlacementError, match="non-negative"):
            AnnealPlacer(seed=-1)
        with pytest.raises(PlacementError, match="non-negative"):
            AnnealPlacer(iterations=-5)


# ---------------------------------------------------------------------------
# ABC contract: every engine emits valid PlacementResults
# ---------------------------------------------------------------------------


def _assert_valid_result(result: PlacementResult, circuit, environment):
    assert isinstance(result, PlacementResult)
    assert math.isfinite(result.total_runtime)
    assert result.total_runtime > 0
    # Stages partition the gate list.
    starts = [stage.start for stage in result.stages]
    stops = [stage.stop for stage in result.stages]
    assert starts[0] == 0
    assert stops[-1] == circuit.num_gates
    assert all(stop == nxt for stop, nxt in zip(stops, starts[1:]))
    nodes = set(result.placement_nodes)
    for stage in result.stages:
        placed = {q: stage.placement[q] for q in circuit.qubits}
        assert len(placed) == circuit.num_qubits
        assert len(set(placed.values())) == circuit.num_qubits, "not injective"
        assert set(placed.values()) <= nodes
    assert len(result.swap_stages) == len(result.stages) - 1


class TestPlacerContract:
    @pytest.mark.parametrize("spec", ENGINE_SPECS)
    def test_molecule_host(self, spec):
        circuit = qft6()
        environment = trans_crotonic_acid()
        result = place_circuit(
            circuit, environment, PlacementOptions(threshold=200.0, placer=spec)
        )
        _assert_valid_result(result, circuit, environment)

    @pytest.mark.parametrize("spec", ENGINE_SPECS)
    def test_grid_host(self, spec):
        # Synthetic grids make non-adjacent interactions infinitely slow, so
        # a finite total runtime proves the engine kept (or routed) every
        # interaction onto adjacent nodes.
        circuit = load_circuit("random:8x20x5")
        environment = grid(4, 5)
        result = place_circuit(
            circuit, environment, PlacementOptions(threshold=10.0, placer=spec)
        )
        _assert_valid_result(result, circuit, environment)

    @pytest.mark.parametrize("spec", ("greedy", "anneal:0x100"))
    def test_placer_object_place_entrypoint(self, spec):
        placer = PLACERS.build(spec)
        result = placer.place(
            qft6(),
            trans_crotonic_acid(),
            PlacementOptions(threshold=200.0, placer=spec),
        )
        assert isinstance(result, PlacementResult)


# ---------------------------------------------------------------------------
# Quality properties
# ---------------------------------------------------------------------------


class TestAnnealQuality:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_anneal_never_worse_than_its_greedy_seed(self, seed):
        # Single-workspace instances: the total runtime IS the workspace
        # runtime, so the annealer's best-ever tracking (seeded with the
        # greedy placement) makes anneal <= greedy a hard guarantee.
        circuit = load_circuit(f"random-chain:8x24x{seed}")
        environment = grid(4, 4)
        greedy = place_circuit(
            circuit, environment, PlacementOptions(threshold=10.0, placer="greedy")
        )
        annealed = place_circuit(
            circuit,
            environment,
            PlacementOptions(threshold=10.0, placer=f"anneal:{seed}x400"),
        )
        assert greedy.num_subcircuits == 1
        assert annealed.num_subcircuits == 1
        assert annealed.total_runtime <= greedy.total_runtime

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_exact_parity_on_tiny_hosts(self, seed):
        # On a tiny host the annealer's budget dwarfs the search space, so
        # it must land on the exact engine's optimum.
        circuit = load_circuit(f"random-chain:4x8x{seed}")
        environment = grid(2, 2)
        exact = place_circuit(
            circuit, environment, PlacementOptions(threshold=10.0)
        )
        annealed = place_circuit(
            circuit,
            environment,
            PlacementOptions(threshold=10.0, placer=f"anneal:{seed}"),
        )
        assert annealed.total_runtime == exact.total_runtime

    def test_greedy_is_finite_on_infinite_delay_hosts(self):
        # grid/chain hosts default non-adjacent pairs to infinite delay;
        # the greedy seed (or its monomorphism fallback) must stay finite.
        circuit = load_circuit("random-chain:12x36x7")
        result = place_circuit(
            circuit, grid(4, 4), PlacementOptions(threshold=10.0, placer="greedy")
        )
        assert math.isfinite(result.total_runtime)


# ---------------------------------------------------------------------------
# Determinism (in-process and across PYTHONHASHSEED / --jobs subprocesses)
# ---------------------------------------------------------------------------


class TestInProcessDeterminism:
    @pytest.mark.parametrize("spec", ("greedy", "anneal:3x200"))
    def test_same_spec_same_placement(self, spec):
        circuit = load_circuit("random:8x20x5")
        options = PlacementOptions(threshold=10.0, placer=spec)
        first = place_circuit(circuit, grid(4, 5), options)
        second = place_circuit(circuit, grid(4, 5), options)
        assert _stage_fingerprint(first) == _stage_fingerprint(second)

    def test_anneal_ignores_global_random_state(self):
        import random as random_module

        circuit = load_circuit("random:8x20x5")
        options = PlacementOptions(threshold=10.0, placer="anneal:3x200")
        random_module.seed(1)
        first = place_circuit(circuit, grid(4, 5), options)
        random_module.seed(99999)
        second = place_circuit(circuit, grid(4, 5), options)
        assert _stage_fingerprint(first) == _stage_fingerprint(second)


HEURISTIC_SWEEP_ARGS = [
    "sweep", "random:8x20x5", "grid:4x4", "--thresholds", "10", "20",
    "--placer", "anneal:7x150",
]


def _heuristic_sweep_output(hash_seed: str, jobs: int) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    env["PYTHONPATH"] = str(REPO_SRC) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    completed = subprocess.run(
        [sys.executable, "-m", "repro.cli"]
        + HEURISTIC_SWEEP_ARGS
        + ["--jobs", str(jobs)],
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, completed.stderr
    return completed.stdout


class TestHashSeedAndJobsDeterminism:
    def test_anneal_sweep_identical_across_hash_seeds_and_jobs(self):
        reference = _heuristic_sweep_output("0", jobs=1)
        assert "inf" not in reference
        for hash_seed in ("1", "12345"):
            assert _heuristic_sweep_output(hash_seed, jobs=1) == reference, (
                f"anneal outputs diverged at PYTHONHASHSEED={hash_seed}"
            )
        assert _heuristic_sweep_output("98765", jobs=2) == reference, (
            "jobs=2 anneal outputs diverged from the serial run"
        )


# ---------------------------------------------------------------------------
# Multi-restart portfolio (anneal:SEED1,SEED2,...)
# ---------------------------------------------------------------------------


class _TwoQubitGate:
    is_two_qubit = True

    def __init__(self, a, b):
        self.qubits = (a, b)


class TestMultiRestartAnneal:
    def test_spec_builds_multi_restart(self):
        multi = PLACERS.build("anneal:3,5,9")
        assert isinstance(multi, MultiRestartAnnealPlacer)
        assert multi.seeds == (3, 5, 9)
        assert multi.iterations == AnnealPlacer().iterations
        budget = PLACERS.build("anneal:3,5x400")
        assert budget.seeds == (3, 5)
        assert budget.iterations == 400
        # Plain integer seeds keep building the single-trajectory engine.
        assert isinstance(PLACERS.build("anneal:3"), AnnealPlacer)

    def test_iteration_budget_rejects_comma_list(self):
        with pytest.raises(UnknownSpecError, match="comma-separated list"):
            PLACERS.build("anneal:1x2,3")
        with pytest.raises(UnknownSpecError, match="comma-separated list"):
            PlacementOptions(placer="anneal:1x2,3")

    def test_constructor_validation(self):
        with pytest.raises(PlacementError, match="at least one"):
            MultiRestartAnnealPlacer(seeds=())
        with pytest.raises(PlacementError, match="non-negative"):
            MultiRestartAnnealPlacer(seeds=(1, -2))
        with pytest.raises(PlacementError, match="non-negative"):
            MultiRestartAnnealPlacer(seeds=(1, 2), iterations=-5)

    def _fake_candidates(self, rows):
        """Run workspace_candidates with greedy + _anneal stubbed per seed.

        ``rows`` maps seed -> (placement, cost); the greedy seed row is a
        fixed finite placeholder so the annealing loop actually runs.
        """
        placer = MultiRestartAnnealPlacer(seeds=tuple(rows), iterations=10)
        subcircuit = [_TwoQubitGate("q0", "q1")]
        context = SimpleNamespace(node_order={"n0": 0, "n1": 1, "n2": 2})

        def fake_anneal(self, workspace, sub, ctx, environment, options,
                        seed_placement, seed_runtime, movable, evaluator):
            return rows[self.seed]

        with mock.patch(
            "repro.core.placers.anneal.greedy_candidate",
            return_value=({"q0": "n0", "q1": "n1"}, 10.0),
        ), mock.patch.object(AnnealPlacer, "_anneal", fake_anneal):
            return placer.workspace_candidates(
                None, subcircuit, None, context, None, None, None, None
            )

    def test_best_row_wins(self):
        rows = {
            1: ({"q0": "n1", "q1": "n2"}, 7.0),
            2: ({"q0": "n0", "q1": "n2"}, 5.0),
            3: ({"q0": "n0", "q1": "n1"}, 9.0),
        }
        assert self._fake_candidates(rows) == [rows[2]]

    def test_cost_ties_break_by_canonical_signature(self):
        # Equal costs: the winner is the placement whose node-index
        # signature is smallest, regardless of seed-list order.
        tied = {
            1: ({"q0": "n1", "q1": "n2"}, 5.0),  # signature (1, 2)
            2: ({"q0": "n0", "q1": "n2"}, 5.0),  # signature (0, 2) -> wins
        }
        expected = [tied[2]]
        assert self._fake_candidates(tied) == expected
        assert self._fake_candidates(
            {2: tied[2], 1: tied[1]}
        ) == expected

    def test_matches_best_single_restart_end_to_end(self):
        # Penalise every restart except seed 5: the portfolio must then be
        # bit-identical to running seed 5 alone.
        circuit = load_circuit("random:8x20x5")
        options = PlacementOptions(threshold=10.0, placer="anneal:3,5,9x150")
        real_anneal = AnnealPlacer._anneal

        def penalised(self, *args, **kwargs):
            placement, cost = real_anneal(self, *args, **kwargs)
            if self.seed != 5:
                return placement, cost + 1e9
            return placement, cost

        with mock.patch.object(AnnealPlacer, "_anneal", penalised):
            multi = place_circuit(circuit, grid(4, 5), options)
        single = place_circuit(
            circuit, grid(4, 5),
            PlacementOptions(threshold=10.0, placer="anneal:5x150"),
        )
        assert _stage_fingerprint(multi) == _stage_fingerprint(single)

    def test_seed_list_order_does_not_matter(self):
        circuit = load_circuit("random:8x20x5")
        first = place_circuit(
            circuit, grid(4, 5),
            PlacementOptions(threshold=10.0, placer="anneal:3,9x150"),
        )
        second = place_circuit(
            circuit, grid(4, 5),
            PlacementOptions(threshold=10.0, placer="anneal:9,3x150"),
        )
        assert _stage_fingerprint(first) == _stage_fingerprint(second)

    def test_never_worse_than_any_single_restart(self):
        circuit = load_circuit("random:8x20x5")
        multi = place_circuit(
            circuit, grid(4, 5),
            PlacementOptions(threshold=10.0, placer="anneal:3,9x150"),
        )
        singles = [
            place_circuit(
                circuit, grid(4, 5),
                PlacementOptions(threshold=10.0, placer=f"anneal:{seed}x150"),
            ).total_runtime
            for seed in (3, 9)
        ]
        assert multi.total_runtime <= min(singles)

    def test_restart_counter(self):
        circuit = load_circuit("random:8x20x5")
        before = STATS.snapshot()
        place_circuit(
            circuit, grid(4, 5),
            PlacementOptions(threshold=10.0, placer="anneal:1,2x100"),
        )
        delta = STATS.delta_since(before)
        restarts = delta.get("placer.anneal_restarts", 0)
        assert restarts > 0
        assert restarts % 2 == 0
        assert delta.get("placer.anneal_steps") == delta.get(
            "placer.moves_accepted", 0
        ) + delta.get("placer.moves_rejected", 0)

    def test_run_config_round_trips_multi_restart_spec(self):
        config = RunConfig(
            circuit="qft:7",
            environment="grid:4x4",
            options=PlacementOptions(placer="anneal:3,5x200"),
        )
        text = config.to_json()
        assert json.loads(text)["options"]["placer"] == "anneal:3,5x200"
        assert RunConfig.from_json(text) == config


# ---------------------------------------------------------------------------
# Config / CLI round trip
# ---------------------------------------------------------------------------


class TestConfigAndCliRoundTrip:
    def test_run_config_round_trips_placer_spec(self):
        config = RunConfig(
            circuit="qft:7",
            environment="grid:4x4",
            options=PlacementOptions(placer="anneal:7x500"),
        )
        text = config.to_json()
        assert json.loads(text)["options"]["placer"] == "anneal:7x500"
        assert RunConfig.from_json(text) == config

    def test_config_file_rejects_unknown_placer(self):
        payload = json.loads(
            RunConfig(circuit="qft6", environment="grid:4x4").to_json()
        )
        payload["options"]["placer"] = "bogus"
        with pytest.raises(ConfigError, match="valid specs"):
            RunConfig.from_dict(payload)

    def test_cli_rejects_unknown_placer_with_exit_2(self, capsys):
        code = main(
            ["place", "qft6", "trans-crotonic-acid", "--placer", "bogus"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "valid specs" in err and "anneal" in err

    def test_cli_place_with_heuristic_placer(self, capsys):
        code = main(
            [
                "place", "random:8x20x5", "grid:4x4",
                "--threshold", "10", "--placer", "anneal:5x150",
                "--output", "json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["rows"][0]["feasible"] is True

    def test_cli_config_file_carries_placer(self, tmp_path, capsys):
        config_path = tmp_path / "run.json"
        RunConfig(
            circuit="random:8x20x5",
            environment="grid:4x4",
            options=PlacementOptions(threshold=10.0, placer="anneal:5x150"),
            output="json",
        ).save(str(config_path))
        assert main(["place", "--config", str(config_path)]) == 0
        via_config = json.loads(capsys.readouterr().out)
        assert main(
            [
                "place", "random:8x20x5", "grid:4x4",
                "--threshold", "10", "--placer", "anneal:5x150",
                "--output", "json",
            ]
        ) == 0
        via_flags = json.loads(capsys.readouterr().out)
        assert (
            via_config["rows"][0]["runtime_seconds"]
            == via_flags["rows"][0]["runtime_seconds"]
        )

    def test_cli_list_includes_placer_section(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "placers:" in out
        assert "anneal[:SEED[,SEED...][xITERS]]" in out
        assert "scheduler backends:" in out
        assert "native" in out


# ---------------------------------------------------------------------------
# STATS counters
# ---------------------------------------------------------------------------


class TestPlacerCounters:
    def test_anneal_reports_counters(self):
        circuit = load_circuit("random:8x20x5")
        before = STATS.snapshot()
        place_circuit(
            circuit,
            grid(4, 5),
            PlacementOptions(threshold=10.0, placer="anneal:0x150"),
        )
        delta = STATS.delta_since(before)
        assert delta.get("placer.anneal_steps", 0) > 0
        assert delta.get("placer.delta_evals", 0) > 0
        assert delta.get("placer.anneal_steps") == delta.get(
            "placer.moves_accepted", 0
        ) + delta.get("placer.moves_rejected", 0)

    def test_exact_reports_no_placer_counters(self):
        before = STATS.snapshot()
        place_circuit(
            qft6(), trans_crotonic_acid(), PlacementOptions(threshold=200.0)
        )
        delta = STATS.delta_since(before)
        assert not any(name.startswith("placer.") for name in delta)


# ---------------------------------------------------------------------------
# Session + sharded execution
# ---------------------------------------------------------------------------


ANNEAL_CONFIG = RunConfig(
    circuit="random:8x20x5",
    environment="grid:4x4",
    thresholds=(10.0, 20.0),
    options=PlacementOptions(placer="anneal:3x120"),
)


class TestSessionAndSharding:
    def test_session_sweep_with_anneal(self):
        result = Session(ANNEAL_CONFIG).sweep()
        assert any(cell.feasible for cell in result.row.cells)

    def test_sharded_anneal_merge_matches_serial(self):
        config = ANNEAL_CONFIG.replace(shards=2)
        session = Session(config)
        serial = session.sweep()
        shards = [session.sweep_shard(index) for index in range(2)]
        merged = sharding.merge_shards(shards)
        assert deterministic_rows(merged.outcomes) == deterministic_rows(
            serial.outcomes
        )
        merged_counters = dict(merged.counters)
        assert merged_counters.get("placer.anneal_steps", 0) > 0
