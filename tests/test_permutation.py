"""Unit tests for permutations over physical nodes."""

import networkx as nx
import pytest

from repro.exceptions import RoutingError
from repro.routing.permutation import (
    Permutation,
    complete_partial_permutation,
    permutation_between_placements,
    required_permutation,
)


class TestPermutation:
    def test_identity(self):
        perm = Permutation.identity(["a", "b", "c"])
        assert perm.is_identity()
        assert perm.num_non_fixed() == 0

    def test_non_bijection_rejected(self):
        with pytest.raises(RoutingError):
            Permutation({"a": "b", "b": "b"})

    def test_target_outside_sources_rejected(self):
        with pytest.raises(RoutingError):
            Permutation({"a": "z"})

    def test_from_cycle(self):
        perm = Permutation.from_cycle(["a", "b", "c"], ["a", "b", "c", "d"])
        assert perm["a"] == "b"
        assert perm["c"] == "a"
        assert perm["d"] == "d"

    def test_cycles_decomposition(self):
        perm = Permutation({"a": "b", "b": "a", "c": "c", "d": "e", "e": "d"})
        cycles = perm.cycles()
        assert sorted(len(cycle) for cycle in cycles) == [2, 2]

    def test_cycles_with_fixed_points(self):
        perm = Permutation({"a": "a", "b": "b"})
        assert perm.cycles(include_fixed_points=True) == [["a"], ["b"]]

    def test_inverse(self):
        perm = Permutation({"a": "b", "b": "c", "c": "a"})
        assert perm.inverse().compose(perm).is_identity() or perm.compose(perm.inverse()).is_identity()

    def test_compose(self):
        first = Permutation({"a": "b", "b": "a", "c": "c"})
        second = Permutation({"a": "c", "c": "a", "b": "b"})
        composed = first.compose(second)
        # a -> b -> b; b -> a -> c; c -> c -> a
        assert composed["a"] == "b"
        assert composed["b"] == "c"
        assert composed["c"] == "a"

    def test_compose_different_node_sets_rejected(self):
        with pytest.raises(RoutingError):
            Permutation({"a": "a"}).compose(Permutation({"b": "b"}))

    def test_displaced_nodes(self):
        perm = Permutation({"a": "b", "b": "a", "c": "c"})
        assert set(perm.displaced_nodes()) == {"a", "b"}

    def test_apply_to_assignment(self):
        perm = Permutation({"n1": "n2", "n2": "n1", "n3": "n3"})
        assert perm.apply_to_assignment({"q": "n1", "r": "n3"}) == {"q": "n2", "r": "n3"}


class TestRequiredPermutation:
    def test_basic(self):
        partial = required_permutation({"q": "x", "r": "y"}, {"q": "y", "r": "x"})
        assert partial == {"x": "y", "y": "x"}

    def test_qubits_missing_from_target_ignored(self):
        partial = required_permutation({"q": "x", "r": "y"}, {"q": "z"})
        assert partial == {"x": "z"}

    def test_conflicting_destination_rejected(self):
        with pytest.raises(RoutingError):
            required_permutation({"q": "x", "r": "y"}, {"q": "z", "r": "z"})


class TestCompletion:
    def test_dont_care_tokens_stay_in_place_when_possible(self):
        graph = nx.path_graph(4)
        perm = complete_partial_permutation(graph, {0: 1, 1: 0})
        assert perm[2] == 2
        assert perm[3] == 3

    def test_displaced_dont_care_goes_to_nearest_free_node(self):
        graph = nx.path_graph(4)
        # Token at 0 must go to 3; therefore the token at 3 must vacate.
        perm = complete_partial_permutation(graph, {0: 3})
        assert perm[0] == 3
        assert perm[3] != 3
        assert set(perm.as_dict().values()) == {0, 1, 2, 3}

    def test_reference_to_unknown_node_rejected(self):
        graph = nx.path_graph(3)
        with pytest.raises(RoutingError):
            complete_partial_permutation(graph, {0: 99})

    def test_between_placements(self):
        graph = nx.path_graph(3)
        perm = permutation_between_placements(graph, {"q": 0}, {"q": 2})
        assert perm[0] == 2
        assert len(perm) == 3
