"""Parity tests: the incremental RuntimeEvaluator vs full rescheduling."""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.circuits import gates as g
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.library import qft_circuit
from repro.core.config import PlacementOptions
from repro.core.fine_tuning import (
    default_cost_function,
    fine_tune_workspace_placement,
    hill_climb,
    hill_climb_incremental,
)
from repro.core.placement import place_circuit
from repro.hardware.molecules import histidine, trans_crotonic_acid
from repro.timing.scheduler import RuntimeEvaluator, circuit_runtime

RELAXED = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _random_circuit(num_qubits, num_gates, seed):
    rng = random.Random(seed)
    qubits = list(range(num_qubits))
    gate_list = []
    for _ in range(num_gates):
        kind = rng.random()
        if kind < 0.45:
            a, b = rng.sample(qubits, 2)
            gate_list.append(g.zz(a, b, rng.choice([90.0, 180.0, 45.0])))
        elif kind < 0.8:
            gate_list.append(g.rx(rng.choice(qubits), rng.choice([90.0, 180.0])))
        else:
            gate_list.append(g.rz(rng.choice(qubits), 90.0))  # free gate
    return QuantumCircuit(qubits, gate_list, name=f"rand{seed}")


def _random_placement(circuit, environment, seed):
    rng = random.Random(seed)
    nodes = rng.sample(list(environment.nodes), circuit.num_qubits)
    return dict(zip(circuit.qubits, nodes))


class TestFullEvaluationParity:
    @RELAXED
    @given(st.integers(0, 500), st.booleans())
    def test_runtime_matches_circuit_runtime(self, seed, cap):
        environment = trans_crotonic_acid()
        circuit = _random_circuit(5, 24, seed)
        placement = _random_placement(circuit, environment, seed + 1)
        evaluator = RuntimeEvaluator(
            circuit, environment, apply_interaction_cap=cap
        )
        expected = circuit_runtime(
            circuit, placement, environment,
            apply_interaction_cap=cap, validate=False,
        )
        assert evaluator.runtime(placement) == expected
        assert evaluator.set_base(placement) == expected

    def test_empty_circuit(self, crotonic):
        circuit = QuantumCircuit(["a", "b"], [], name="empty")
        evaluator = RuntimeEvaluator(circuit, crotonic)
        assert evaluator.runtime({"a": "M", "b": "C1"}) == 0.0


class TestIncrementalParity:
    @RELAXED
    @given(st.integers(0, 500))
    def test_single_move_matches_full(self, seed):
        environment = trans_crotonic_acid()
        circuit = _random_circuit(5, 30, seed)
        placement = _random_placement(circuit, environment, seed + 1)
        evaluator = RuntimeEvaluator(
            circuit, environment, apply_interaction_cap=True
        )
        evaluator.set_base(placement)
        rng = random.Random(seed + 2)
        used = set(placement.values())
        free = [n for n in environment.nodes if n not in used]
        for _ in range(6):
            qubit = rng.choice(circuit.qubits)
            if free and rng.random() < 0.5:
                overrides = {qubit: rng.choice(free)}
            else:
                other = rng.choice(circuit.qubits)
                if other == qubit:
                    continue
                overrides = {
                    qubit: placement[other],
                    other: placement[qubit],
                }
            candidate = dict(placement)
            candidate.update(overrides)
            expected = circuit_runtime(
                circuit, candidate, environment,
                apply_interaction_cap=True, validate=False,
            )
            assert evaluator.runtime_with(overrides) == expected

    def test_noop_override_returns_base(self, crotonic):
        circuit = _random_circuit(4, 12, 7)
        placement = _random_placement(circuit, crotonic, 8)
        evaluator = RuntimeEvaluator(circuit, crotonic)
        base = evaluator.set_base(placement)
        assert evaluator.runtime_with({circuit.qubits[0]: placement[circuit.qubits[0]]}) == base

    def test_full_recompute_flag_asserts_parity(self, crotonic):
        circuit = _random_circuit(5, 25, 3)
        placement = _random_placement(circuit, crotonic, 4)
        evaluator = RuntimeEvaluator(
            circuit, crotonic, apply_interaction_cap=True, full_recompute=True
        )
        evaluator.set_base(placement)
        used = set(placement.values())
        free = [n for n in crotonic.nodes if n not in used]
        # Every incremental evaluation self-checks against a full one.
        for qubit in circuit.qubits:
            for node in free:
                evaluator.runtime_with({qubit: node})

    def test_limit_cutoff_only_affects_rejected_moves(self, crotonic):
        circuit = _random_circuit(5, 25, 11)
        placement = _random_placement(circuit, crotonic, 12)
        evaluator = RuntimeEvaluator(circuit, crotonic)
        base = evaluator.set_base(placement)
        qubit = circuit.qubits[0]
        free = [n for n in crotonic.nodes if n not in set(placement.values())]
        for node in free:
            exact = evaluator.runtime_with({qubit: node})
            limited = evaluator.runtime_with({qubit: node}, limit=base)
            if exact < base:
                assert limited == exact
            else:
                assert limited >= base  # inf or the exact (>= base) value

    def test_requires_set_base(self, crotonic):
        circuit = _random_circuit(3, 6, 0)
        evaluator = RuntimeEvaluator(circuit, crotonic)
        with pytest.raises(RuntimeError):
            evaluator.runtime_with({0: "M"})

    def test_stale_after_environment_recalibration(self, crotonic):
        circuit = _random_circuit(4, 10, 5)
        placement = _random_placement(circuit, crotonic, 6)
        evaluator = RuntimeEvaluator(circuit, crotonic)
        evaluator.set_base(placement)
        crotonic.set_pair_delay("M", "C1", 11.0)
        with pytest.raises(RuntimeError, match="recalibrated"):
            evaluator.runtime(placement)
        with pytest.raises(RuntimeError, match="recalibrated"):
            evaluator.runtime_with({circuit.qubits[0]: "C4"})
        # A fresh evaluator sees the new delays and agrees with the referee.
        fresh = RuntimeEvaluator(circuit, crotonic)
        assert fresh.runtime(placement) == circuit_runtime(
            circuit, placement, crotonic, validate=False
        )


class TestHillClimbParity:
    @pytest.mark.parametrize("seed", range(6))
    def test_incremental_equals_generic_hill_climb(self, seed):
        environment = trans_crotonic_acid()
        circuit = _random_circuit(5, 20, seed)
        placement = _random_placement(circuit, environment, seed + 50)
        movable = sorted(
            {q for gate in circuit if gate.is_two_qubit for q in gate.qubits},
            key=repr,
        )
        allowed = list(environment.nodes)
        cost = default_cost_function(circuit, environment, apply_interaction_cap=True)
        expected_placement, expected_cost = hill_climb(
            placement, cost, movable, allowed
        )
        evaluator = RuntimeEvaluator(
            circuit, environment, apply_interaction_cap=True
        )
        actual_placement, actual_cost = hill_climb_incremental(
            placement, evaluator, movable, allowed
        )
        assert actual_placement == expected_placement
        assert actual_cost == expected_cost

    def test_fine_tune_with_extra_cost_matches_generic(self, crotonic):
        circuit = _random_circuit(5, 15, 21)
        placement = _random_placement(circuit, crotonic, 22)

        def extra(candidate):
            return 0.0 if candidate[0] == placement[0] else 500.0

        tuned, tuned_cost = fine_tune_workspace_placement(
            circuit, placement, crotonic,
            allowed_nodes=list(crotonic.nodes), extra_cost=extra,
        )
        movable = sorted(
            {q for gate in circuit if gate.is_two_qubit for q in gate.qubits},
            key=repr,
        )
        base_cost = default_cost_function(circuit, crotonic)
        reference, reference_cost = hill_climb(
            placement,
            lambda p: base_cost(p) + extra(p),
            movable,
            list(crotonic.nodes),
        )
        assert tuned == reference
        assert tuned_cost == reference_cost


class TestPlacerLevelParity:
    def test_debug_full_recompute_option_matches_default(self, crotonic):
        circuit = qft_circuit(6)
        checked = place_circuit(
            circuit, crotonic,
            PlacementOptions(threshold=200.0, debug_full_recompute=True),
        )
        plain = place_circuit(
            qft_circuit(6), crotonic, PlacementOptions(threshold=200.0)
        )
        assert checked.total_runtime == plain.total_runtime
        assert [s.placement for s in checked.stages] == [
            s.placement for s in plain.stages
        ]

    def test_histidine_placement_with_parity_assertions(self):
        environment = histidine()
        result = place_circuit(
            qft_circuit(6), environment,
            PlacementOptions(threshold=100.0, debug_full_recompute=True),
        )
        assert result.total_runtime > 0
