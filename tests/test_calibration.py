"""Tests for building environments from coupling-constant calibration data."""

import pytest

from repro.exceptions import EnvironmentError_
from repro.hardware.calibration import (
    DEFAULT_MIN_COUPLING_HZ,
    acetyl_chloride_couplings_example,
    coupling_to_delay,
    environment_from_couplings,
    pulse_to_delay,
)


class TestConversions:
    def test_coupling_to_delay_formula(self):
        # 1 / (4 * 25 Hz) = 10 ms = 100 units.
        assert coupling_to_delay(25.0) == 100.0

    def test_coupling_sign_is_ignored(self):
        assert coupling_to_delay(-25.0) == coupling_to_delay(25.0)

    def test_strong_couplings_clamp_at_one_unit(self):
        assert coupling_to_delay(1e6) == 1.0

    def test_zero_coupling_rejected(self):
        with pytest.raises(EnvironmentError_):
            coupling_to_delay(0.0)

    def test_pulse_to_delay(self):
        # A 800 us pulse is 8 units of 1e-4 s.
        assert pulse_to_delay(800.0) == 8.0

    def test_invalid_pulse_rejected(self):
        with pytest.raises(EnvironmentError_):
            pulse_to_delay(0.0)


class TestEnvironmentFromCouplings:
    def test_basic_construction(self):
        env = environment_from_couplings(
            {"A": 100.0, "B": 100.0}, {("A", "B"): 50.0}, name="demo"
        )
        assert env.num_qubits == 2
        assert env.pair_delay("A", "B") == 50.0
        assert env.single_qubit_delay("A") == 1.0

    def test_weak_couplings_dropped(self):
        env = environment_from_couplings(
            {"A": 100.0, "B": 100.0, "C": 100.0},
            {("A", "B"): 50.0, ("B", "C"): 0.1},
        )
        # The 0.1 Hz coupling is below the 0.2 Hz noise floor.
        assert env.pair_delay("B", "C") == env.default_pair_delay
        assert env.pair_delay("B", "C") == coupling_to_delay(DEFAULT_MIN_COUPLING_HZ)

    def test_unknown_nucleus_rejected(self):
        with pytest.raises(EnvironmentError_):
            environment_from_couplings({"A": 100.0}, {("A", "Z"): 10.0})

    def test_empty_rejected(self):
        with pytest.raises(EnvironmentError_):
            environment_from_couplings({}, {})

    def test_invalid_noise_floor_rejected(self):
        with pytest.raises(EnvironmentError_):
            environment_from_couplings({"A": 100.0}, {}, min_coupling_hz=0.0)

    def test_custom_unusable_delay(self):
        env = environment_from_couplings(
            {"A": 100.0, "B": 100.0}, {}, unusable_delay=777.0
        )
        assert env.pair_delay("A", "B") == 777.0


class TestCalibratedAcetylChloride:
    def test_example_close_to_figure1_values(self):
        env = acetyl_chloride_couplings_example()
        exact = {"M-C1": 38.0, "C1-C2": 89.0, "M-C2": 672.0}
        assert env.pair_delay("M", "C1") == pytest.approx(exact["M-C1"], rel=0.05)
        assert env.pair_delay("C1", "C2") == pytest.approx(exact["C1-C2"], rel=0.05)
        assert env.pair_delay("M", "C2") == pytest.approx(exact["M-C2"], rel=0.05)

    def test_example_supports_placement(self):
        from repro.circuits.library import qec3_encoder
        from repro.core.placement import place_circuit

        result = place_circuit(qec3_encoder(), acetyl_chloride_couplings_example())
        assert result.num_subcircuits == 1
        # The optimum of the calibrated molecule is close to the exact 136.
        assert result.total_runtime == pytest.approx(136.0, rel=0.1)
