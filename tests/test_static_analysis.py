"""The repository-level static-analysis gate (``pytest -m lint``).

Tier-1 runs these too (they are cheap); the ``lint`` marker exists so CI
can re-run just the gate after a fix without paying for the full suite.
The mypy case degrades to a skip when mypy is not installed — the runtime
image does not ship it, and the linter gate must not depend on it.
"""

import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import (
    BASELINE_FILENAME,
    compare_to_baseline,
    lint_tree,
    load_baseline,
)

REPO_ROOT = Path(__file__).resolve().parent.parent

pytestmark = pytest.mark.lint


def run_lint_cli(*argv, cwd=REPO_ROOT):
    """Run ``python -m repro.lint`` against the real package sources."""
    return subprocess.run(
        [sys.executable, "-m", "repro.lint", *argv],
        cwd=str(cwd),
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        capture_output=True,
        text=True,
        timeout=300,
    )


def copy_tree_for_drift(tmp_path):
    """A throwaway copy of the lintable tree the gate can be run against."""
    shutil.copytree(
        REPO_ROOT / "src", tmp_path / "src",
        ignore=shutil.ignore_patterns("__pycache__"),
    )
    shutil.copy(
        REPO_ROOT / BASELINE_FILENAME, tmp_path / BASELINE_FILENAME
    )
    return tmp_path


class TestTreeIsClean:
    def test_tree_clean_modulo_baseline(self):
        baseline = load_baseline(str(REPO_ROOT / BASELINE_FILENAME))
        fresh, stale = compare_to_baseline(lint_tree(str(REPO_ROOT)), baseline)
        assert fresh == [], "new findings:\n" + "\n".join(
            d.format() for d in fresh
        )
        assert stale == [], f"stale baseline entries (ratchet down): {stale}"

    def test_baseline_has_no_det002_entries(self):
        # The fix sweep removed every repr tie-break; the ratchet must keep
        # it that way — DET002 hits are fixed, never baselined.
        baseline = load_baseline(str(REPO_ROOT / BASELINE_FILENAME))
        det002 = [key for key in baseline if key.endswith("::DET002")]
        assert det002 == []

    def test_cli_check_exits_zero(self):
        completed = subprocess.run(
            [sys.executable, "-m", "repro.lint", "--check"],
            cwd=str(REPO_ROOT),
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert completed.returncode == 0, completed.stdout + completed.stderr


class TestScopeGate:
    """SCOPE001 end-to-end: the gate fails when the declared sets drift.

    The declared sets are parsed from the *analyzed* ``scopes.py`` (not
    the imported package), so a mutated copy of the tree exercises the
    gate without touching the live sources.
    """

    def test_dropping_a_declared_member_fails_the_gate(self, tmp_path):
        root = copy_tree_for_drift(tmp_path)
        scopes = root / "src" / "repro" / "lint" / "scopes.py"
        text = scopes.read_text()
        member = '    "repro.analysis.sharding",\n'
        assert member in text
        scopes.write_text(text.replace(member, "", 1))  # first: FINGERPRINT
        completed = run_lint_cli(
            "--check", "--root", str(root), "--no-cache"
        )
        assert completed.returncode == 1, completed.stdout + completed.stderr
        assert "SCOPE001" in completed.stdout
        assert "repro.analysis.sharding" in completed.stdout

    def test_new_sha256_in_an_undeclared_module_fails_the_gate(
        self, tmp_path
    ):
        root = copy_tree_for_drift(tmp_path)
        target = root / "src" / "repro" / "hardware" / "io.py"
        target.write_text(
            target.read_text()
            + "\n\ndef _extra_fingerprint(data):\n"
            "    import hashlib\n"
            "    return hashlib.sha256(data).hexdigest()\n"
        )
        completed = run_lint_cli(
            "--check", "--root", str(root), "--no-cache"
        )
        assert completed.returncode == 1, completed.stdout + completed.stderr
        assert "SCOPE001" in completed.stdout
        assert "repro.hardware.io" in completed.stdout


class TestJobsByteIdentity:
    def test_json_report_is_identical_across_jobs(self):
        serial = run_lint_cli("--format", "json", "--jobs", "1", "--no-cache")
        parallel = run_lint_cli("--format", "json", "--jobs", "4", "--no-cache")
        assert serial.returncode == parallel.returncode
        assert serial.stdout == parallel.stdout
        assert serial.stdout.strip()


class TestTypingGate:
    def test_strict_modules_pass_mypy(self):
        pytest.importorskip("mypy", reason="mypy not installed in this image")
        completed = subprocess.run(
            [sys.executable, "-m", "mypy", "--config-file", "mypy.ini"],
            cwd=str(REPO_ROOT),
            capture_output=True,
            text=True,
            timeout=600,
        )
        assert completed.returncode == 0, completed.stdout + completed.stderr
