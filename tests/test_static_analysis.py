"""The repository-level static-analysis gate (``pytest -m lint``).

Tier-1 runs these too (they are cheap); the ``lint`` marker exists so CI
can re-run just the gate after a fix without paying for the full suite.
The mypy case degrades to a skip when mypy is not installed — the runtime
image does not ship it, and the linter gate must not depend on it.
"""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import (
    BASELINE_FILENAME,
    compare_to_baseline,
    lint_tree,
    load_baseline,
)

REPO_ROOT = Path(__file__).resolve().parent.parent

pytestmark = pytest.mark.lint


class TestTreeIsClean:
    def test_tree_clean_modulo_baseline(self):
        baseline = load_baseline(str(REPO_ROOT / BASELINE_FILENAME))
        fresh, stale = compare_to_baseline(lint_tree(str(REPO_ROOT)), baseline)
        assert fresh == [], "new findings:\n" + "\n".join(
            d.format() for d in fresh
        )
        assert stale == [], f"stale baseline entries (ratchet down): {stale}"

    def test_baseline_has_no_det002_entries(self):
        # The fix sweep removed every repr tie-break; the ratchet must keep
        # it that way — DET002 hits are fixed, never baselined.
        baseline = load_baseline(str(REPO_ROOT / BASELINE_FILENAME))
        det002 = [key for key in baseline if key.endswith("::DET002")]
        assert det002 == []

    def test_cli_check_exits_zero(self):
        completed = subprocess.run(
            [sys.executable, "-m", "repro.lint", "--check"],
            cwd=str(REPO_ROOT),
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert completed.returncode == 0, completed.stdout + completed.stderr


class TestTypingGate:
    def test_strict_modules_pass_mypy(self):
        pytest.importorskip("mypy", reason="mypy not installed in this image")
        completed = subprocess.run(
            [sys.executable, "-m", "mypy", "--config-file", "mypy.ini"],
            cwd=str(REPO_ROOT),
            capture_output=True,
            text=True,
            timeout=600,
        )
        assert completed.returncode == 0, completed.stdout + completed.stderr
