"""Unit and integration tests for the full placement engine."""

import pytest

from repro.circuits import gates as g
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.library import phaseest, qec3_encoder, qft_circuit
from repro.core.config import PlacementOptions
from repro.core.placement import QuantumCircuitPlacer, place_circuit
from repro.exceptions import PlacementError, ThresholdError
from repro.hardware.architectures import linear_chain
from repro.hardware.molecules import pentafluorobutadienyl_iron
from repro.timing.scheduler import circuit_runtime


class TestOptions:
    def test_invalid_options_rejected(self):
        with pytest.raises(PlacementError):
            PlacementOptions(max_monomorphisms=0)
        with pytest.raises(PlacementError):
            PlacementOptions(lookahead_width=0)
        with pytest.raises(PlacementError):
            PlacementOptions(threshold=-5)
        with pytest.raises(PlacementError):
            PlacementOptions(fine_tuning_max_rounds=-1)

    def test_replace(self):
        options = PlacementOptions(threshold=100.0)
        changed = options.replace(threshold=200.0, lookahead=False)
        assert changed.threshold == 200.0
        assert not changed.lookahead
        assert options.threshold == 100.0


class TestEncoderPlacement:
    """Experiment E1/E2 row 1: the encoder on acetyl chloride."""

    def test_finds_the_optimal_mapping(self, acetyl, encoder_circuit):
        result = place_circuit(encoder_circuit, acetyl)
        assert result.num_subcircuits == 1
        assert result.total_runtime == 136.0
        assert result.runtime_seconds == pytest.approx(0.0136)
        assert result.initial_placement == {"a": "C2", "b": "C1", "c": "M"}

    def test_default_threshold_is_minimal_connecting(self, acetyl, encoder_circuit):
        result = place_circuit(encoder_circuit, acetyl)
        assert result.threshold == acetyl.minimal_connecting_threshold() == 89.0

    def test_no_swaps_needed(self, acetyl, encoder_circuit):
        result = place_circuit(encoder_circuit, acetyl)
        assert result.total_swap_count == 0
        assert result.swap_stages == []

    def test_placer_class_front_end(self, acetyl, encoder_circuit):
        placer = QuantumCircuitPlacer(acetyl)
        result = placer.place(encoder_circuit)
        assert result.total_runtime == 136.0


class TestMultiStagePlacement:
    def test_qft_on_crotonic_uses_multiple_subcircuits(self, crotonic):
        result = place_circuit(
            qft_circuit(6), crotonic, PlacementOptions(threshold=100.0)
        )
        assert result.num_subcircuits > 1
        assert result.total_swap_count > 0
        assert len(result.swap_stages) == result.num_subcircuits - 1

    def test_physical_circuit_runtime_matches_reported_total(self, crotonic):
        options = PlacementOptions(threshold=100.0)
        result = place_circuit(phaseest(), crotonic, options)
        identity = {node: node for node in crotonic.nodes}
        recomputed = circuit_runtime(
            result.physical_circuit, identity, crotonic, apply_interaction_cap=True
        )
        assert recomputed == pytest.approx(result.total_runtime)

    def test_stage_placements_are_injective(self, crotonic):
        result = place_circuit(
            qft_circuit(6), crotonic, PlacementOptions(threshold=100.0)
        )
        for stage in result.stages:
            nodes = list(stage.placement.values())
            assert len(set(nodes)) == len(nodes)
            assert set(stage.placement.keys()) == set(qft_circuit(6).qubits)

    def test_swap_stages_only_use_fast_interactions(self, crotonic):
        threshold = 100.0
        result = place_circuit(
            qft_circuit(6), crotonic, PlacementOptions(threshold=threshold)
        )
        for swap_stage in result.swap_stages:
            for layer in swap_stage.routing.layers:
                for a, b in layer:
                    assert crotonic.pair_delay(a, b) <= threshold

    def test_lower_threshold_never_reduces_subcircuit_count(self, crotonic):
        """Fewer allowed interactions -> at least as many subcircuits."""
        low = place_circuit(phaseest(), crotonic, PlacementOptions(threshold=100.0))
        high = place_circuit(phaseest(), crotonic, PlacementOptions(threshold=10000.0))
        assert low.num_subcircuits >= high.num_subcircuits

    def test_sequential_levels_model_not_faster(self, crotonic):
        asynchronous = place_circuit(
            phaseest(), crotonic, PlacementOptions(threshold=200.0)
        )
        sequential = place_circuit(
            phaseest(), crotonic, PlacementOptions(threshold=200.0, sequential_levels=True)
        )
        assert sequential.total_runtime >= asynchronous.total_runtime - 1e-9


class TestInfeasibleCases:
    def test_threshold_disallowing_everything_raises(self):
        env = pentafluorobutadienyl_iron()
        with pytest.raises(ThresholdError):
            place_circuit(phaseest(), env, PlacementOptions(threshold=50.0))

    def test_circuit_larger_than_environment_raises(self, acetyl):
        circuit = QuantumCircuit(range(4), [g.cnot(0, 1)])
        with pytest.raises(PlacementError):
            place_circuit(circuit, acetyl)

    def test_component_too_small_raises(self, crotonic):
        # At threshold 50 the crotonic bond graph loses C4, leaving 6 nodes;
        # a 7-qubit circuit cannot be placed there.
        circuit = QuantumCircuit(
            range(7), [g.cnot(i, i + 1) for i in range(6)]
        )
        with pytest.raises(ThresholdError):
            place_circuit(circuit, crotonic, PlacementOptions(threshold=50.0))


class TestChainPlacement:
    def test_matching_chain_circuit_single_workspace(self):
        env = linear_chain(6)
        circuit = QuantumCircuit(
            range(6), [g.generic_2q(i, i + 1, 3.0) for i in range(5)]
        )
        result = place_circuit(circuit, env, PlacementOptions(threshold=10.0))
        assert result.num_subcircuits == 1

    def test_options_disabling_heuristics_still_work(self, crotonic):
        options = PlacementOptions(
            threshold=100.0,
            fine_tuning=False,
            lookahead=False,
            leaf_override=False,
            max_monomorphisms=5,
        )
        result = place_circuit(phaseest(), crotonic, options)
        assert result.total_runtime > 0

    def test_heuristics_help_or_do_not_hurt_much(self, crotonic):
        full = place_circuit(phaseest(), crotonic, PlacementOptions(threshold=100.0))
        bare = place_circuit(
            phaseest(),
            crotonic,
            PlacementOptions(
                threshold=100.0, fine_tuning=False, lookahead=False, max_monomorphisms=1
            ),
        )
        assert full.total_runtime <= bare.total_runtime * 1.5


class TestMedianEdgeDelay:
    """Unit tests for the (true) median used by the swap-cost estimate."""

    def _graph(self, delays):
        import networkx as nx

        graph = nx.Graph()
        for index, delay in enumerate(delays):
            graph.add_edge(("n", index), ("m", index), delay=delay)
        return graph

    def test_odd_length_takes_middle(self):
        from repro.core.placement import _median_edge_delay

        assert _median_edge_delay(self._graph([30.0, 10.0, 20.0])) == 20.0

    def test_even_length_averages_middle_pair(self):
        from repro.core.placement import _median_edge_delay

        # The seed implementation returned the upper-middle element (35.0);
        # the true median of [15, 16, 20, 35, 36, 60] is (20 + 35) / 2.
        delays = [15.0, 16.0, 20.0, 35.0, 36.0, 60.0]
        assert _median_edge_delay(self._graph(delays)) == 27.5

    def test_two_edges(self):
        from repro.core.placement import _median_edge_delay

        assert _median_edge_delay(self._graph([10.0, 30.0])) == 20.0

    def test_no_edges_defaults_to_one(self):
        import networkx as nx
        from repro.core.placement import _median_edge_delay

        assert _median_edge_delay(nx.Graph()) == 1.0

    def test_missing_delay_attribute_defaults(self):
        import networkx as nx
        from repro.core.placement import _median_edge_delay

        graph = nx.Graph([(0, 1)])
        assert _median_edge_delay(graph) == 1.0
