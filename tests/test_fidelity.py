"""Unit tests for the fidelity model."""

import pytest

from repro.circuits import gates as g
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.library import qec3_encoder
from repro.core.placement import place_circuit
from repro.exceptions import ReproError
from repro.timing.fidelity import (
    FidelityModel,
    estimate_fidelity,
    fidelity_of_placement_result,
    gate_fidelity,
)


class TestFidelityModel:
    def test_invalid_time_constants_rejected(self):
        with pytest.raises(ReproError):
            FidelityModel(coherence_time=0)
        with pytest.raises(ReproError):
            FidelityModel(gate_quality_time=-1)

    def test_gate_fidelity_bounds(self):
        model = FidelityModel()
        assert gate_fidelity(0.0, model) == 1.0
        assert 0 < gate_fidelity(1000.0, model) < 1.0


class TestEstimateFidelity:
    def test_fidelity_in_unit_interval(self, acetyl, encoder_circuit):
        value = estimate_fidelity(
            encoder_circuit, {"a": "C2", "b": "C1", "c": "M"}, acetyl
        )
        assert 0 < value <= 1

    def test_better_placement_has_higher_fidelity(self, acetyl, encoder_circuit):
        good = estimate_fidelity(
            encoder_circuit, {"a": "C2", "b": "C1", "c": "M"}, acetyl
        )
        bad = estimate_fidelity(
            encoder_circuit, {"a": "M", "b": "C2", "c": "C1"}, acetyl
        )
        assert good > bad

    def test_empty_circuit_has_unit_fidelity(self, acetyl):
        circuit = QuantumCircuit(["a"])
        assert estimate_fidelity(circuit, {"a": "M"}, acetyl) == pytest.approx(1.0)

    def test_longer_coherence_time_helps(self, acetyl, encoder_circuit):
        placement = {"a": "C2", "b": "C1", "c": "M"}
        short = estimate_fidelity(
            encoder_circuit, placement, acetyl, FidelityModel(coherence_time=1000.0)
        )
        long = estimate_fidelity(
            encoder_circuit, placement, acetyl, FidelityModel(coherence_time=100000.0)
        )
        assert long > short

    def test_adding_gates_lowers_fidelity(self, acetyl):
        placement = {"a": "M", "b": "C1"}
        small = QuantumCircuit(["a", "b"], [g.zz("a", "b", 90)])
        large = QuantumCircuit(["a", "b"], [g.zz("a", "b", 90)] * 4)
        assert estimate_fidelity(large, placement, acetyl) < estimate_fidelity(
            small, placement, acetyl
        )

    def test_gate_error_uses_capped_gates(self, acetyl):
        """Regression: the gate-error exponent summed over the *uncapped*
        circuit while the runtime term used the capped one."""
        import math

        from repro.timing.fidelity import FidelityModel
        from repro.timing.gate_times import capped_circuit, gate_operating_time
        from repro.timing.scheduler import circuit_runtime

        placement = {"a": "M", "b": "C1"}
        # 8 x 90-degree ZZ pulses: 8 relative-duration units, capped at 3.
        circuit = QuantumCircuit(["a", "b"], [g.zz("a", "b", 90.0)] * 8)
        model = FidelityModel()
        value = estimate_fidelity(
            circuit, placement, acetyl, model, apply_interaction_cap=True
        )
        capped = capped_circuit(circuit)
        runtime = circuit_runtime(capped, placement, acetyl)
        exponent = sum(
            gate_operating_time(gate, placement, acetyl) for gate in capped
        )
        expected = math.exp(-exponent / model.gate_quality_time) * math.exp(
            -circuit.num_qubits * runtime / model.coherence_time
        )
        assert value == pytest.approx(expected, rel=1e-12)

    def test_capping_consistent_between_terms(self, acetyl):
        """Capped estimation equals estimating the pre-capped circuit."""
        placement = {"a": "M", "b": "C1"}
        circuit = QuantumCircuit(
            ["a", "b"],
            [g.zz("a", "b", 180.0)] * 3 + [g.ry("a", 90.0), g.zz("a", "b", 90.0)],
        )
        from repro.timing.gate_times import capped_circuit

        assert estimate_fidelity(
            circuit, placement, acetyl, apply_interaction_cap=True
        ) == pytest.approx(
            estimate_fidelity(
                capped_circuit(circuit), placement, acetyl,
                apply_interaction_cap=True,
            ),
            rel=1e-12,
        )


class TestPlacementResultFidelity:
    def test_fidelity_of_placement_result(self, acetyl):
        result = place_circuit(qec3_encoder(), acetyl)
        value = fidelity_of_placement_result(result, acetyl)
        assert 0 < value <= 1

    def test_swap_overhead_is_charged(self, crotonic):
        from repro.circuits.library import phaseest
        from repro.core.config import PlacementOptions

        multi = place_circuit(phaseest(), crotonic, PlacementOptions(threshold=100.0))
        whole = place_circuit(phaseest(), crotonic, PlacementOptions(threshold=10000.0))
        fidelity_multi = fidelity_of_placement_result(multi, crotonic)
        fidelity_whole = fidelity_of_placement_result(whole, crotonic)
        # The faster multi-stage placement also has the better estimated
        # fidelity, despite paying for its SWAP gates.
        assert fidelity_multi > fidelity_whole
