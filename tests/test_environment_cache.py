"""Tests for the environment's derived-graph caching and invalidation."""

import networkx as nx
import pytest

from repro.circuits.library import qft_circuit
from repro.core.config import PlacementOptions
from repro.core.placement import place_circuit
from repro.core.stats import STATS
from repro.exceptions import ThresholdError
from repro.hardware.molecules import trans_crotonic_acid
from repro.hardware.threshold_graph import largest_connected_nodes


class TestAdjacencyCache:
    def test_same_object_reused_across_calls(self, crotonic):
        first = crotonic.adjacency_graph(100.0)
        second = crotonic.adjacency_graph(100.0)
        assert first is second

    def test_equivalent_thresholds_share_one_graph(self, crotonic):
        # No trans-crotonic delay falls in (100, 500], so thresholds 100,
        # 200 and 500 admit exactly the same edges — one cached graph.
        graphs = {id(crotonic.adjacency_graph(t)) for t in (100.0, 200.0, 500.0)}
        assert len(graphs) == 1
        # 1000 admits the two-bond couplings (900/960/...): a different graph.
        assert crotonic.adjacency_graph(1000.0) is not crotonic.adjacency_graph(100.0)

    def test_cache_hit_counters(self, crotonic):
        before = STATS.snapshot()
        crotonic.adjacency_graph(100.0)
        crotonic.adjacency_graph(100.0)
        crotonic.adjacency_graph(200.0)  # same signature as 100
        delta = STATS.delta_since(before)
        assert delta.get("environment.adjacency_cache_misses", 0) == 1
        assert delta.get("environment.adjacency_cache_hits", 0) == 2

    def test_same_object_reuse_across_sweep_cells(self, crotonic):
        """A sweep placing at the same threshold twice reuses one graph."""
        before = STATS.snapshot()
        for _ in range(3):
            place_circuit(
                qft_circuit(5), crotonic, PlacementOptions(threshold=100.0)
            )
        delta = STATS.delta_since(before)
        assert delta.get("environment.adjacency_cache_misses", 0) <= 1

    def test_cached_graph_content_matches_uncached_build(self, crotonic):
        cached = crotonic.adjacency_graph(100.0)
        fresh = trans_crotonic_acid().adjacency_graph(100.0)
        assert nx.utils.graphs_equal(cached, fresh)


class TestInvalidation:
    def test_set_pair_delay_invalidates(self, crotonic):
        graph = crotonic.adjacency_graph(100.0)
        assert not graph.has_edge("M", "C2")  # 900 units: too slow for 100
        crotonic.set_pair_delay("M", "C2", 50.0)
        updated = crotonic.adjacency_graph(100.0)
        assert updated is not graph
        assert updated.has_edge("M", "C2")
        assert crotonic.pair_delay("M", "C2") == 50.0

    def test_set_single_qubit_delay_invalidates(self, crotonic):
        graph = crotonic.adjacency_graph(100.0)
        crotonic.set_single_qubit_delay("M", 3.0)
        updated = crotonic.adjacency_graph(100.0)
        assert updated is not graph
        assert updated.nodes["M"]["delay"] == 3.0

    def test_explicit_invalidate_caches(self, crotonic):
        graph = crotonic.adjacency_graph(100.0)
        crotonic.invalidate_caches()
        assert crotonic.adjacency_graph(100.0) is not graph

    def test_mutation_changes_minimal_connecting_threshold(self, crotonic):
        original = crotonic.minimal_connecting_threshold()
        assert original == 60.0  # the C3-C4 bond is the bottleneck
        crotonic.set_pair_delay("C3", "C4", 25.0)
        assert crotonic.minimal_connecting_threshold() == 36.0

    def test_set_pair_delay_rejects_unknown_nodes(self, crotonic):
        from repro.exceptions import EnvironmentError_

        with pytest.raises(EnvironmentError_):
            crotonic.set_pair_delay("M", "nope", 10.0)
        with pytest.raises(EnvironmentError_):
            crotonic.set_pair_delay("M", "M", 10.0)


class TestLargestComponentCache:
    def test_component_graph_cached(self, crotonic):
        # Threshold 20 keeps only the M-C1 (20) and C3-H2 (15) + C2-H1 (16)
        # bonds: the graph is disconnected and the largest component is
        # computed once, then reused.
        first = crotonic.largest_component_graph(20.0)
        second = crotonic.largest_component_graph(20.0)
        assert first is second
        assert first.number_of_nodes() < crotonic.num_qubits

    def test_connected_threshold_returns_adjacency_object(self, crotonic):
        threshold = crotonic.minimal_connecting_threshold()
        assert (
            crotonic.largest_component_graph(threshold)
            is crotonic.adjacency_graph(threshold)
        )

    def test_threshold_error_through_cached_component_branch(self, crotonic):
        """Placement through the cached largest-component path still N/As."""
        # Warm the caches for threshold 50 (disconnected on crotonic) ...
        crotonic.adjacency_graph(50.0)
        crotonic.largest_component_graph(50.0)
        # ... then a 7-qubit circuit cannot fit the largest component, and
        # the error must surface both on cold and warm cache paths.
        with pytest.raises(ThresholdError):
            place_circuit(
                qft_circuit(7), crotonic, PlacementOptions(threshold=50.0)
            )
        with pytest.raises(ThresholdError):
            place_circuit(
                qft_circuit(7), crotonic, PlacementOptions(threshold=50.0)
            )

    def test_largest_connected_nodes_uses_cache(self, crotonic):
        nodes_first = largest_connected_nodes(crotonic, 50.0)
        nodes_second = largest_connected_nodes(crotonic, 50.0)
        assert nodes_first == nodes_second
        assert set(nodes_first) < set(crotonic.nodes)


class TestThresholdSignature:
    def test_signature_buckets_thresholds(self, crotonic):
        assert (
            crotonic.threshold_signature(100.0)
            == crotonic.threshold_signature(200.0)
            == crotonic.threshold_signature(500.0)
        )
        assert crotonic.threshold_signature(100.0) != crotonic.threshold_signature(
            1000.0
        )

    def test_signature_below_all_delays(self, crotonic):
        explicit, default_included = crotonic.threshold_signature(1.0)
        assert explicit is None
        assert default_included is False

    def test_signature_tracks_mutation(self, crotonic):
        before = crotonic.threshold_signature(100.0)
        crotonic.set_pair_delay("M", "C2", 99.0)
        assert crotonic.threshold_signature(100.0) != before

    def test_infinite_explicit_delay_does_not_collide(self):
        import math

        from repro.hardware.environment import PhysicalEnvironment

        env = PhysicalEnvironment(
            {"a": 1.0, "b": 1.0, "c": 1.0},
            {("a", "b"): 2.0, ("b", "c"): math.inf},
            default_pair_delay=5.0,
        )
        assert env.threshold_signature(10.0) != env.threshold_signature(math.inf)
        finite = env.adjacency_graph(10.0)
        assert not finite.has_edge("b", "c")
        unbounded = env.adjacency_graph(math.inf)
        assert unbounded is not finite
        assert unbounded.has_edge("b", "c")
        assert unbounded.number_of_edges() == 3
