"""Unit tests for the whole-circuit placement baselines."""

import pytest

from repro.circuits import gates as g
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.library import qec3_encoder
from repro.core.exhaustive import (
    hill_climbing_whole_circuit_placement,
    iter_placements,
    optimal_whole_circuit_placement,
    search_space_size,
    whole_circuit_runtime,
)
from repro.exceptions import PlacementError
from repro.hardware.molecules import histidine


class TestSearchSpace:
    def test_table2_search_space_sizes(self, acetyl, crotonic, histidine_env):
        assert search_space_size(qec3_encoder(), acetyl) == 6
        five_qubit = QuantumCircuit(range(5), [g.cnot(0, 1)])
        assert search_space_size(five_qubit, crotonic) == 2520
        ten_qubit = QuantumCircuit(range(10), [g.cnot(0, 1)])
        assert search_space_size(ten_qubit, histidine_env) == 239_500_800

    def test_iter_placements_count(self, acetyl):
        circuit = QuantumCircuit(["a", "b"], [g.zz("a", "b")])
        assert len(list(iter_placements(circuit, acetyl))) == 6


class TestOptimalPlacement:
    def test_encoder_optimum_matches_paper(self, acetyl, encoder_circuit):
        placement, runtime = optimal_whole_circuit_placement(
            encoder_circuit, acetyl, apply_interaction_cap=False
        )
        assert runtime == 136.0
        assert placement == {"a": "C2", "b": "C1", "c": "M"}

    def test_circuit_too_large_rejected(self, acetyl):
        circuit = QuantumCircuit(range(4), [g.cnot(0, 1)])
        with pytest.raises(PlacementError):
            optimal_whole_circuit_placement(circuit, acetyl)

    def test_search_space_limit_enforced(self, histidine_env):
        circuit = QuantumCircuit(range(10), [g.cnot(0, 1)])
        with pytest.raises(PlacementError):
            optimal_whole_circuit_placement(
                circuit, histidine_env, search_space_limit=1000
            )

    def test_restricting_nodes(self, crotonic, encoder_circuit):
        placement, runtime = optimal_whole_circuit_placement(
            encoder_circuit, crotonic, nodes=["M", "C1", "C2"]
        )
        assert set(placement.values()) <= {"M", "C1", "C2"}


class TestHillClimbingBaseline:
    def test_matches_exhaustive_on_encoder(self, acetyl, encoder_circuit):
        _, exhaustive_runtime = optimal_whole_circuit_placement(
            encoder_circuit, acetyl, apply_interaction_cap=False
        )
        _, climbed_runtime = hill_climbing_whole_circuit_placement(
            encoder_circuit, acetyl, apply_interaction_cap=False
        )
        assert climbed_runtime == exhaustive_runtime

    def test_rejects_oversized_circuit(self, acetyl):
        circuit = QuantumCircuit(range(4), [g.cnot(0, 1)])
        with pytest.raises(PlacementError):
            hill_climbing_whole_circuit_placement(circuit, acetyl)


class TestWholeCircuitRuntime:
    def test_falls_back_to_hill_climbing_for_large_spaces(self, histidine_env):
        circuit = QuantumCircuit(
            range(10), [g.cnot(i, i + 1) for i in range(9)]
        )
        runtime = whole_circuit_runtime(
            circuit, histidine_env, search_space_limit=1000
        )
        assert runtime > 0
