"""Tests of the Hamiltonian-cycle reduction (Section 4, experiment E8)."""

import networkx as nx
import pytest

from repro.complexity.hamiltonian_cycle import (
    find_zero_cost_placement,
    has_hamiltonian_cycle,
    placement_cost,
    reduction_circuit,
    reduction_environment,
    verify_reduction,
)
from repro.exceptions import ReproError


class TestReductionConstruction:
    def test_environment_weights_encode_graph(self):
        graph = nx.cycle_graph(4)
        env = reduction_environment(graph)
        assert env.pair_delay(0, 1) == 0.0  # edge of H
        assert env.pair_delay(0, 2) == 1.0  # non-edge of H

    def test_environment_single_qubit_delays_are_zero(self):
        env = reduction_environment(nx.cycle_graph(4))
        assert all(env.single_qubit_delay(node) == 0.0 for node in env.nodes)

    def test_circuit_has_one_gate_per_level(self):
        circuit = reduction_circuit(5)
        assert circuit.num_gates == 5
        assert all(gate.is_two_qubit for gate in circuit)

    def test_circuit_interactions_form_a_cycle(self):
        from repro.circuits.interaction_graph import interaction_graph

        graph = interaction_graph(reduction_circuit(5))
        assert nx.is_isomorphic(graph, nx.cycle_graph(5))

    def test_too_small_inputs_rejected(self):
        with pytest.raises(ReproError):
            reduction_environment(nx.path_graph(2))
        with pytest.raises(ReproError):
            reduction_circuit(2)


class TestEquivalence:
    def test_cycle_graph_has_zero_cost_placement(self):
        graph = nx.cycle_graph(5)
        assignment = find_zero_cost_placement(graph)
        assert assignment is not None
        assert placement_cost(graph, assignment) == 0.0

    def test_tree_has_no_zero_cost_placement(self):
        tree = nx.balanced_tree(2, 2)
        assert find_zero_cost_placement(tree) is None
        assert not has_hamiltonian_cycle(tree)

    def test_complete_graph_is_hamiltonian(self):
        assert has_hamiltonian_cycle(nx.complete_graph(5))

    def test_petersen_graph_is_not_hamiltonian(self):
        """The Petersen graph is the classic non-Hamiltonian counterexample."""
        assert not has_hamiltonian_cycle(nx.petersen_graph())

    def test_star_graph_is_not_hamiltonian(self):
        assert not has_hamiltonian_cycle(nx.star_graph(4))

    def test_nonzero_cost_counts_missing_edges(self):
        graph = nx.path_graph(4)  # 0-1-2-3, no cycle edge 3-0
        cost = placement_cost(graph, [0, 1, 2, 3])
        assert cost >= 1.0

    @pytest.mark.parametrize("seed", range(6))
    def test_verify_reduction_on_random_graphs(self, seed):
        graph = nx.gnp_random_graph(6, 0.5, seed=seed)
        if graph.number_of_nodes() < 3:
            pytest.skip("degenerate random graph")
        assert verify_reduction(graph)

    def test_zero_cost_placement_is_a_hamiltonian_cycle(self):
        graph = nx.cycle_graph(6)
        assignment = find_zero_cost_placement(graph)
        pairs = list(zip(assignment, assignment[1:] + [assignment[0]]))
        assert all(graph.has_edge(a, b) for a, b in pairs)
        assert len(set(assignment)) == 6
