"""Exact reproduction of the paper's worked examples (experiment E1).

Everything in this module is pinned to the numbers printed in the paper:
Example 3 / Table 1 (the 770-unit mapping and its trace), the 136-unit
optimum, and the Table 2 row for the same circuit (0.0136 seconds, search
space 6, a single workspace).
"""

import pytest

from repro.circuits.library import qec3_encoder
from repro.core.exhaustive import (
    optimal_whole_circuit_placement,
    search_space_size,
)
from repro.core.placement import place_circuit
from repro.hardware.molecules import acetyl_chloride
from repro.timing.scheduler import circuit_runtime, schedule
from repro.timing.trace import trace_rows

PAPER_MAPPING = {"a": "M", "b": "C2", "c": "C1"}
OPTIMAL_MAPPING = {"a": "C2", "b": "C1", "c": "M"}


class TestExample3:
    def test_paper_mapping_costs_770(self):
        runtime = circuit_runtime(qec3_encoder(), PAPER_MAPPING, acetyl_chloride())
        assert runtime == 770.0

    def test_optimal_mapping_costs_136(self):
        runtime = circuit_runtime(qec3_encoder(), OPTIMAL_MAPPING, acetyl_chloride())
        assert runtime == 136.0

    def test_table1_trace_matches_paper(self):
        result = schedule(qec3_encoder(), PAPER_MAPPING, acetyl_chloride())
        rows = {row[0]: row[1:] for row in trace_rows(result, qubit_order=["a", "b", "c"])}
        assert rows["a"] == ["8", "680", "680", "680", "680"]
        assert rows["b"] == ["0", "680", "680", "769", "770"]
        assert rows["c"] == ["0", "0", "8", "769", "769"]

    def test_search_space_has_six_assignments(self):
        assert search_space_size(qec3_encoder(), acetyl_chloride()) == 6

    def test_exhaustive_search_confirms_136_is_optimal(self):
        _, runtime = optimal_whole_circuit_placement(
            qec3_encoder(), acetyl_chloride(), apply_interaction_cap=False
        )
        assert runtime == 136.0


class TestTable2FirstRow:
    def test_placer_reconstructs_the_experimentalists_mapping(self):
        result = place_circuit(qec3_encoder(), acetyl_chloride())
        assert result.num_subcircuits == 1
        assert result.runtime_seconds == pytest.approx(0.0136)
        assert result.initial_placement == OPTIMAL_MAPPING
