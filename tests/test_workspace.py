"""Unit tests for greedy workspace extraction."""

import networkx as nx
import pytest

from repro.circuits import gates as g
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.library import qft_circuit
from repro.core.workspace import extract_workspaces, workspace_boundaries
from repro.exceptions import PlacementError


@pytest.fixture
def chain_host():
    return nx.path_graph(4)  # 0-1-2-3


class TestExtraction:
    def test_single_workspace_when_circuit_fits(self, chain_host):
        circuit = QuantumCircuit(
            ["a", "b", "c"], [g.zz("a", "b"), g.zz("b", "c"), g.zz("a", "b")]
        )
        workspaces = extract_workspaces(circuit, chain_host)
        assert len(workspaces) == 1
        assert workspaces[0].start == 0
        assert workspaces[0].stop == 3

    def test_star_interaction_splits_on_chain_host(self, chain_host):
        # A degree-3 star cannot embed in a path (max degree 2).
        circuit = QuantumCircuit(
            ["a", "b", "c", "d"],
            [g.zz("a", "b"), g.zz("a", "c"), g.zz("a", "d")],
        )
        workspaces = extract_workspaces(circuit, chain_host)
        assert len(workspaces) == 2
        assert workspaces[0].stop == 2
        assert workspaces[1].start == 2

    def test_workspaces_partition_the_gate_sequence(self, chain_host):
        circuit = qft_circuit(4)
        workspaces = extract_workspaces(circuit, chain_host)
        assert workspaces[0].start == 0
        assert workspaces[-1].stop == circuit.num_gates
        for previous, current in zip(workspaces, workspaces[1:]):
            assert previous.stop == current.start

    def test_each_workspace_embeds(self, chain_host):
        from repro.core.monomorphism import has_monomorphism

        circuit = qft_circuit(4)
        for workspace in extract_workspaces(circuit, chain_host):
            assert has_monomorphism(workspace.interaction_graph, chain_host)

    def test_single_qubit_gates_do_not_split(self, chain_host):
        circuit = QuantumCircuit(
            ["a", "b"], [g.ry("a"), g.zz("a", "b"), g.ry("b"), g.ry("a")]
        )
        assert len(extract_workspaces(circuit, chain_host)) == 1

    def test_circuit_without_two_qubit_gates(self, chain_host):
        circuit = QuantumCircuit(["a", "b"], [g.ry("a"), g.ry("b")])
        workspaces = extract_workspaces(circuit, chain_host)
        assert len(workspaces) == 1
        assert workspaces[0].num_two_qubit_gates == 0

    def test_empty_adjacency_graph_rejected(self):
        circuit = QuantumCircuit(["a", "b"], [g.zz("a", "b")])
        with pytest.raises(PlacementError):
            extract_workspaces(circuit, nx.empty_graph(3))

    def test_qft6_on_crotonic_bond_graph_needs_multiple_workspaces(self, crotonic):
        """The QFT interaction graph is complete; the bond tree cannot host it whole."""
        host = crotonic.adjacency_graph(100.0)
        workspaces = extract_workspaces(qft_circuit(6), host)
        assert len(workspaces) > 1

    def test_odd_cycle_pattern_refuted_on_bipartite_host(self):
        # A triangle cannot embed in a bipartite host (any subgraph of a
        # bipartite graph is bipartite), so the candidate must close the
        # workspace — via the O(V+E) parity shortcut, not a search.
        host = nx.grid_2d_graph(6, 6)
        circuit = QuantumCircuit(
            ["a", "b", "c"],
            [g.zz("a", "b"), g.zz("b", "c"), g.zz("a", "c")],
        )
        workspaces = extract_workspaces(circuit, host)
        assert len(workspaces) == 2
        assert workspaces[0].stop == 2

    def test_random_pattern_extraction_terminates_on_large_grid(self):
        # Regression: refuting an odd-cycle candidate pattern by search on
        # a 1024-node grid effectively never terminated; the bipartite
        # parity shortcut refutes it instantly.
        from repro.registry import load_circuit, load_environment

        circuit = load_circuit("random:24x72x11")
        host = load_environment("grid:32x32").adjacency_graph(10.0)
        workspaces = extract_workspaces(circuit, host)
        assert workspaces[0].start == 0
        assert workspaces[-1].stop == circuit.num_gates

    def test_repeated_interactions_do_not_grow_the_pattern(self, chain_host):
        circuit = QuantumCircuit(
            ["a", "b"], [g.zz("a", "b") for _ in range(10)]
        )
        workspaces = extract_workspaces(circuit, chain_host)
        assert len(workspaces) == 1
        assert workspaces[0].interaction_graph.number_of_edges() == 1


class TestWorkspaceObject:
    def test_active_qubits(self, chain_host):
        circuit = QuantumCircuit(
            ["a", "b", "c"], [g.ry("c"), g.zz("a", "b")]
        )
        workspace = extract_workspaces(circuit, chain_host)[0]
        assert set(workspace.active_qubits) == {"a", "b"}

    def test_subcircuit_round_trip(self, chain_host):
        circuit = qft_circuit(4)
        workspaces = extract_workspaces(circuit, chain_host)
        total = sum(ws.subcircuit(circuit).num_gates for ws in workspaces)
        assert total == circuit.num_gates

    def test_boundaries(self, chain_host):
        circuit = QuantumCircuit(
            ["a", "b", "c", "d"],
            [g.zz("a", "b"), g.zz("a", "c"), g.zz("a", "d")],
        )
        workspaces = extract_workspaces(circuit, chain_host)
        assert workspace_boundaries(workspaces) == [2]
