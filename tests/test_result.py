"""Unit tests for PlacementResult and its sub-objects."""

import pytest

from repro.circuits.library import phaseest, qec3_encoder
from repro.core.config import PlacementOptions
from repro.core.placement import place_circuit


class TestResultAccessors:
    def test_summary_mentions_names_and_runtime(self, acetyl, encoder_circuit):
        result = place_circuit(encoder_circuit, acetyl)
        text = result.summary()
        assert "acetyl chloride" in text
        assert "0.0136" in text

    def test_initial_and_final_placement_single_stage(self, acetyl, encoder_circuit):
        result = place_circuit(encoder_circuit, acetyl)
        assert result.initial_placement == result.final_placement

    def test_final_placement_differs_after_swapping(self, crotonic):
        result = place_circuit(phaseest(), crotonic, PlacementOptions(threshold=100.0))
        assert result.num_subcircuits > 1
        assert result.initial_placement != result.final_placement

    def test_stage_and_swap_runtime_lists(self, crotonic):
        result = place_circuit(phaseest(), crotonic, PlacementOptions(threshold=100.0))
        assert len(result.stage_runtimes()) == result.num_subcircuits
        assert len(result.swap_runtimes()) == result.num_subcircuits - 1
        assert all(value >= 0 for value in result.stage_runtimes())

    def test_swap_depth_and_count_consistency(self, crotonic):
        result = place_circuit(phaseest(), crotonic, PlacementOptions(threshold=100.0))
        assert result.total_swap_depth >= 0
        assert result.total_swap_count >= result.total_swap_depth  # layers hold >= 1 swap
        for stage in result.swap_stages:
            assert stage.num_swaps >= stage.depth

    def test_runtime_seconds_uses_environment_unit(self, acetyl, encoder_circuit):
        result = place_circuit(encoder_circuit, acetyl)
        assert result.runtime_seconds == pytest.approx(
            result.total_runtime * acetyl.time_unit_seconds
        )

    def test_physical_circuit_is_over_environment_nodes(self, crotonic):
        result = place_circuit(phaseest(), crotonic, PlacementOptions(threshold=100.0))
        assert set(result.physical_circuit.qubits) == set(crotonic.nodes)

    def test_total_runtime_not_more_than_sum_of_parts(self, crotonic):
        """The asynchronous model may overlap stage boundaries, never stretch them."""
        result = place_circuit(phaseest(), crotonic, PlacementOptions(threshold=100.0))
        parts = sum(result.stage_runtimes()) + sum(result.swap_runtimes())
        assert result.total_runtime <= parts + 1e-9
