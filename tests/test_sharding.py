"""Tests of the sharded grid pipeline (``repro.analysis.sharding``).

Covers the plan → execute → merge round trip (including through files),
the merge-time verification, outcome serialisation round trips, and the
acceptance gate of the sharding PR: a 2-shard and a 4-shard round trip of
the QFT / trans-crotonic-acid sweep must reproduce the serial
``ExperimentRunner`` rows and work counters byte for byte.
"""

import json
import pickle
from dataclasses import replace
from functools import partial

import pytest

from repro.analysis import sharding
from repro.analysis.runner import (
    ExperimentOutcome,
    ExperimentRunner,
    ExperimentSpec,
    molecule_factory,
    run_experiments,
)
from repro.analysis.serialization import (
    deterministic_rows,
    dump_json,
    outcome_from_dict,
    outcome_to_dict,
    outcomes_payload,
    work_counters,
)
from repro.analysis.sweep import build_sweep_specs, row_from_outcomes, sweep_circuit
from repro.circuits.library import phaseest, qec3_encoder, qft6
from repro.core.config import PlacementOptions
from repro.core.stats import STATS, Counters
from repro.exceptions import ExperimentError, ShardFormatError, ThresholdError
from repro.hardware.molecules import molecule, trans_crotonic_acid


def _small_grid():
    """Four cells over two molecules, one infeasible."""
    return [
        ExperimentSpec(
            circuit_factory=qec3_encoder,
            environment_factory=molecule_factory("acetyl-chloride"),
            threshold=threshold,
            label=f"qec3 thr {threshold:g}",
        )
        for threshold in (50.0, 100.0, 200.0)
    ] + [
        ExperimentSpec(
            circuit_factory=phaseest,
            environment_factory=molecule_factory("trans-crotonic-acid"),
            threshold=200.0,
            label="phaseest",
        )
    ]


def _run_plan(plan, tmp_path=None):
    """Execute every shard (optionally through files) and return the shards."""
    shards = []
    for index in range(plan.num_shards):
        shard_input = plan.shard_input(index)
        if tmp_path is not None:
            path = str(tmp_path / f"shard-{index}.pkl")
            sharding.write_shard(shard_input, path)
            shard_input = sharding.read_shard(path)
        outcome_shard = sharding.execute_shard(shard_input)
        if tmp_path is not None:
            out_path = str(tmp_path / f"out-{index}.json")
            sharding.write_outcome_shard(outcome_shard, out_path)
            outcome_shard = sharding.read_outcome_shard(out_path)
        shards.append(outcome_shard)
    return shards


class TestShardPlan:
    def test_round_robin_partition(self):
        plan = sharding.ShardPlan.build(_small_grid(), num_shards=2)
        assert plan.assignments == ((0, 2), (1, 3))
        assert plan.strategy == "round-robin"

    def test_cost_balanced_puts_expensive_cell_alone(self):
        # phaseest (cell 3) dwarfs the three qec3 cells, so LPT assigns it
        # first and the small cells pile onto the other shard.
        plan = sharding.ShardPlan.build(
            _small_grid(), num_shards=2, strategy="cost-balanced"
        )
        assert (3,) in plan.assignments
        assert plan.assignments == ((3,), (0, 1, 2)) or plan.assignments == (
            (0, 1, 2),
            (3,),
        )

    def test_plan_is_deterministic(self):
        one = sharding.ShardPlan.build(_small_grid(), 3, "cost-balanced")
        two = sharding.ShardPlan.build(_small_grid(), 3, "cost-balanced")
        assert one.assignments == two.assignments
        assert one.fingerprint == two.fingerprint

    def test_strategy_normalisation_and_validation(self):
        plan = sharding.ShardPlan.build(_small_grid(), 2, "cost_balanced")
        assert plan.strategy == "cost-balanced"
        with pytest.raises(ExperimentError, match="strategy"):
            sharding.ShardPlan.build(_small_grid(), 2, "alphabetical")

    def test_more_shards_than_cells_leaves_empty_shards(self):
        plan = sharding.ShardPlan.build(_small_grid()[:2], num_shards=4)
        assert plan.num_shards == 4
        assert plan.assignments == ((0,), (1,), (), ())

    def test_invalid_counts_rejected(self):
        with pytest.raises(ExperimentError, match="num_shards"):
            sharding.ShardPlan.build(_small_grid(), 0)
        plan = sharding.ShardPlan.build(_small_grid(), 2)
        with pytest.raises(ExperimentError, match="out of range"):
            plan.shard_input(2)

    def test_fingerprint_distinguishes_grids(self):
        base = sharding.ShardPlan.build(_small_grid(), 2).fingerprint
        other_specs = _small_grid()
        other_specs[0] = replace(other_specs[0], threshold=75.0)
        assert sharding.ShardPlan.build(other_specs, 2).fingerprint != base
        # ... and is stable for equal grids built twice.
        assert sharding.ShardPlan.build(_small_grid(), 2).fingerprint == base

    def test_metadata_is_json_safe(self):
        plan = sharding.ShardPlan.build(_small_grid(), 2)
        metadata = json.loads(json.dumps(plan.metadata()))
        assert metadata["num_shards"] == 2
        assert metadata["total_cells"] == 4
        assert metadata["labels"][3] == "phaseest"


class TestShardFiles:
    def test_shard_input_file_round_trip(self, tmp_path):
        plan = sharding.ShardPlan.build(_small_grid(), 2)
        path = str(tmp_path / "shard-0.pkl")
        sharding.write_shard(plan.shard_input(0), path)
        clone = sharding.read_shard(path)
        assert clone.indices == plan.assignments[0]
        assert clone.plan_fingerprint == plan.fingerprint
        assert [spec.label for spec in clone.specs] == [
            plan.specs[index].label for index in clone.indices
        ]

    def test_read_shard_rejects_non_shard_files(self, tmp_path):
        path = str(tmp_path / "junk.pkl")
        with open(path, "wb") as handle:
            pickle.dump({"hello": "world"}, handle)
        with pytest.raises(ExperimentError, match="not a shard-input file"):
            sharding.read_shard(path)
        with pytest.raises(ExperimentError, match="cannot read"):
            sharding.read_shard(str(tmp_path / "missing.pkl"))

    def test_unfingerprinted_plan_refuses_shard_files(self, tmp_path):
        # compute_fingerprint=False is the local degenerate path only; its
        # 'local:<N>' tag is not grid-specific, so shard files written from
        # it could merge across unrelated grids.
        plan = sharding.ShardPlan.build(
            _small_grid(), 2, compute_fingerprint=False
        )
        with pytest.raises(ExperimentError, match="compute_fingerprint"):
            sharding.write_shard(plan.shard_input(0), str(tmp_path / "s.pkl"))

    def test_unpicklable_shard_is_a_clean_error(self, tmp_path):
        spec = ExperimentSpec(
            circuit_factory=lambda: qec3_encoder(),
            environment_factory=molecule_factory("acetyl-chloride"),
            label="lambda",
        )
        plan = sharding.ShardPlan.build([spec], 1)
        with pytest.raises(ExperimentError, match="picklable"):
            sharding.write_shard(plan.shard_input(0), str(tmp_path / "s.pkl"))

    def test_malformed_outcome_payload_is_a_clean_error(self):
        with pytest.raises(ExperimentError, match="malformed"):
            sharding.outcome_shard_from_payload(
                {"format": "repro-outcome-shard", "shard_index": 0}
            )
        with pytest.raises(ExperimentError, match="not an outcome-shard"):
            sharding.outcome_shard_from_payload({"format": "something-else"})

    def test_unpicklable_grids_get_distinct_fingerprints(self):
        # The repr fallback must distinguish coexisting grids by their
        # factories (lambda reprs carry the object address, so both
        # factories must stay alive — which they do whenever two plans
        # are being compared or merged).
        factory_a = lambda: qec3_encoder()  # noqa: E731
        factory_b = lambda: phaseest()  # noqa: E731

        def grid(factory):
            return [ExperimentSpec(circuit_factory=factory,
                                   environment_factory=molecule_factory("acetyl-chloride"))]

        one = sharding.grid_fingerprint(grid(factory_a))
        two = sharding.grid_fingerprint(grid(factory_b))
        assert one != two

    def test_outcome_shard_file_round_trip(self, tmp_path):
        plan = sharding.ShardPlan.build(_small_grid(), 2)
        shard = sharding.execute_shard(plan.shard_input(1))
        path = str(tmp_path / "out-1.json")
        sharding.write_outcome_shard(shard, path)
        clone = sharding.read_outcome_shard(path)
        assert clone.plan_fingerprint == shard.plan_fingerprint
        assert clone.indices == shard.indices
        assert clone.counters == shard.counters
        assert deterministic_rows(clone.outcomes) == deterministic_rows(
            shard.outcomes
        )
        # The file is canonical JSON: a re-serialisation is byte-identical.
        assert dump_json(sharding.outcome_shard_to_payload(clone)) == open(
            path, encoding="utf-8"
        ).read()


class TestOutcomeSerialization:
    def test_outcome_round_trip_feasible_and_infeasible(self):
        outcomes = run_experiments(_small_grid()[1:3] + _small_grid()[:1])
        for outcome in outcomes:
            clone = outcome_from_dict(
                json.loads(json.dumps(outcome_to_dict(outcome)))
            )
            assert clone == replace(outcome, result=None)

    def test_raise_if_infeasible_survives_round_trip(self):
        outcome = run_experiments(_small_grid()[:1])[0]  # qec3 @ 50 is N/A
        assert not outcome.feasible
        clone = outcome_from_dict(outcome_to_dict(outcome))
        assert clone.error_type == "ThresholdError"
        with pytest.raises(ThresholdError, match="qec3 thr 50"):
            clone.raise_if_infeasible()

    def test_result_is_never_serialised(self):
        spec = replace(_small_grid()[1], keep_result=True)
        outcome = run_experiments([spec])[0]
        assert outcome.result is not None
        row = outcome_to_dict(outcome)
        assert "result" not in row
        assert outcome_from_dict(row).result is None

    def test_outcomes_payload_shape(self):
        outcomes = run_experiments(_small_grid()[:2])
        payload = outcomes_payload(outcomes, counters={"x": 2})
        assert [row["label"] for row in payload["rows"]] == [
            "qec3 thr 50",
            "qec3 thr 100",
        ]
        assert payload["counters"] == {"x": 2}
        json.loads(dump_json(payload))  # JSON-safe end to end


class TestExecuteAndMerge:
    @pytest.mark.parametrize("strategy", list(sharding.STRATEGIES))
    def test_round_trip_matches_serial(self, strategy, tmp_path):
        specs = _small_grid()
        serial = ExperimentRunner().run(specs)
        plan = sharding.ShardPlan.build(specs, 2, strategy)
        merged = sharding.merge_shards(_run_plan(plan, tmp_path), plan=plan)
        assert deterministic_rows(merged.outcomes) == deterministic_rows(serial)

    def test_merge_without_plan(self):
        plan = sharding.ShardPlan.build(_small_grid(), 3)
        merged = sharding.merge_shards(_run_plan(plan))
        assert [outcome.index for outcome in merged.outcomes] == [0, 1, 2, 3]
        assert merged.num_shards == 3
        assert merged.plan_fingerprint == plan.fingerprint

    def test_merged_work_counters_match_serial(self):
        specs = _small_grid()
        before = STATS.snapshot()
        ExperimentRunner().run(specs)
        serial_counters = STATS.delta_since(before)
        plan = sharding.ShardPlan.build(specs, 2)
        merged = sharding.merge_shards(_run_plan(plan), plan=plan)
        assert work_counters(merged.counters) == work_counters(serial_counters)

    def test_execute_shard_with_parallel_runner(self):
        plan = sharding.ShardPlan.build(_small_grid(), 2)
        serial = sharding.execute_shard(plan.shard_input(0))
        parallel = sharding.execute_shard(
            plan.shard_input(0), ExperimentRunner(jobs=2)
        )
        assert deterministic_rows(parallel.outcomes) == deterministic_rows(
            serial.outcomes
        )

    def test_merge_rejects_foreign_shards(self):
        plan = sharding.ShardPlan.build(_small_grid(), 2)
        other = sharding.ShardPlan.build(_small_grid()[:2], 2)
        shards = _run_plan(plan)
        foreign = _run_plan(other)
        with pytest.raises(ExperimentError, match="different plans"):
            sharding.merge_shards([shards[0], foreign[1]])
        with pytest.raises(ExperimentError, match="different grid"):
            sharding.merge_shards(foreign, plan=plan)

    def test_merge_rejects_missing_and_duplicate_shards(self):
        plan = sharding.ShardPlan.build(_small_grid(), 2)
        shards = _run_plan(plan)
        with pytest.raises(ExperimentError, match="missing \\[1\\]"):
            sharding.merge_shards([shards[0]])
        with pytest.raises(ExperimentError, match="every shard exactly"):
            sharding.merge_shards([shards[0], shards[0]])

    def test_merge_rejects_tampered_outcome_indices(self):
        plan = sharding.ShardPlan.build(_small_grid(), 2)
        shards = _run_plan(plan)
        shards[0].outcomes[0].index = 99
        with pytest.raises(ExperimentError, match="does not match"):
            sharding.merge_shards(shards, plan=plan)

    def test_merge_empty_input_rejected(self):
        with pytest.raises(ExperimentError, match="empty"):
            sharding.merge_shards([])


class TestCountersMergeAssociativity:
    def test_merge_is_associative_across_shards(self):
        deltas = [
            {"monomorphism.searches": 3, "scheduler.full_evals": 7},
            {"monomorphism.searches": 1, "environment.adjacency_cache_hits": 4},
            {"scheduler.full_evals": 2, "scheduler.incremental_evals": 11},
        ]

        def fold(groups):
            total = Counters()
            for group in groups:
                partial_sum = Counters()
                for delta in group:
                    partial_sum.merge(delta)
                total.merge(partial_sum.snapshot())
            return total.snapshot()

        # ((a + b) + c), (a + (b + c)) and the flat sum all agree: shard
        # workers may pre-merge their own worker deltas in any grouping.
        flat = fold([deltas])
        assert fold([deltas[:2], deltas[2:]]) == flat
        assert fold([deltas[:1], deltas[1:]]) == flat
        assert fold([[delta] for delta in deltas]) == flat


class TestDegenerateLocalPath:
    def test_runner_run_is_one_shard_plan(self):
        # The local path goes through plan -> execute -> merge; its
        # outcomes must be indistinguishable from the shard pipeline's.
        specs = _small_grid()
        outcomes = ExperimentRunner().run(specs)
        assert [outcome.index for outcome in outcomes] == [0, 1, 2, 3]
        assert [outcome.label for outcome in outcomes] == [
            spec.label for spec in specs
        ]

    def test_iter_outcomes_streams_in_serial_spec_order(self):
        seen = []
        for outcome in ExperimentRunner().iter_outcomes(_small_grid()):
            seen.append(outcome.index)
        assert seen == [0, 1, 2, 3]

    def test_iter_outcomes_parallel_covers_all_cells(self):
        seen = sorted(
            outcome.index
            for outcome in ExperimentRunner(jobs=2).iter_outcomes(_small_grid())
        )
        assert seen == [0, 1, 2, 3]

    def test_abandoned_parallel_iterator_keeps_completed_counters(self):
        # Breaking out of the stream must not hang on the rest of the grid
        # (unstarted cells are cancelled) and must not lose the counters of
        # cells that did execute.
        before = STATS.snapshot()
        iterator = ExperimentRunner(jobs=2).iter_outcomes(_small_grid())
        first = next(iterator)
        iterator.close()
        assert first.counters  # the consumed cell did real work...
        delta = STATS.delta_since(before)
        # ... and everything that ran (consumed or in-flight) was merged.
        assert delta.get("scheduler.full_evals", 0) > 0


class TestSweepStreaming:
    def test_on_row_fires_once_with_the_final_row(self):
        rows = []
        returned = sweep_circuit(
            qec3_encoder,
            molecule("acetyl-chloride"),
            thresholds=(50.0, 100.0),
            on_row=rows.append,
        )
        assert len(rows) == 1
        assert [cell.formatted() for cell in rows[0].cells] == [
            cell.formatted() for cell in returned.cells
        ]


class TestQftCrotonicAcceptance:
    """The PR's acceptance gate: qft/crotonic sweep, 2 and 4 shards."""

    @pytest.fixture(scope="class")
    def grid(self):
        specs, cell_index = build_sweep_specs(
            qft6,
            trans_crotonic_acid(),
            molecule_factory("trans-crotonic-acid"),
            (50.0, 100.0, 200.0, 1000.0),
            PlacementOptions(),
        )
        before = STATS.snapshot()
        serial = ExperimentRunner().run(specs)
        counters = STATS.delta_since(before)
        return specs, cell_index, serial, counters

    @pytest.mark.parametrize("num_shards", [2, 4])
    def test_round_trip_is_byte_identical(self, grid, num_shards, tmp_path):
        specs, cell_index, serial, serial_counters = grid
        plan = sharding.ShardPlan.build(specs, num_shards, "cost-balanced")
        merged = sharding.merge_shards(_run_plan(plan, tmp_path), plan=plan)
        # Byte-identical deterministic rows (canonical JSON encoding)...
        assert dump_json(deterministic_rows(merged.outcomes)) == dump_json(
            deterministic_rows(serial)
        )
        # ... identical merged work counters ...
        assert work_counters(merged.counters) == work_counters(serial_counters)
        # ... and an identical reassembled sweep row.
        thresholds = (50.0, 100.0, 200.0, 1000.0)
        merged_row = row_from_outcomes(
            merged.outcomes, cell_index, thresholds, "qft6", "trans-crotonic acid"
        )
        serial_row = row_from_outcomes(
            serial, cell_index, thresholds, "qft6", "trans-crotonic acid"
        )
        assert [cell.formatted() for cell in merged_row.cells] == [
            cell.formatted() for cell in serial_row.cells
        ]


class TestCrashSafeFiles:
    """Corruption of any pipeline file is a one-line ShardFormatError."""

    def test_truncated_shard_input_is_a_clean_error(self, tmp_path):
        plan = sharding.ShardPlan.build(_small_grid(), 2)
        path = str(tmp_path / "shard-0.pkl")
        sharding.write_shard(plan.shard_input(0), path)
        data = open(path, "rb").read()
        open(path, "wb").write(data[: len(data) // 2])
        with pytest.raises(ShardFormatError, match="shard-0.pkl"):
            sharding.read_shard(path)

    def test_bit_flipped_shard_input_fails_the_checksum(self, tmp_path):
        plan = sharding.ShardPlan.build(_small_grid(), 2)
        path = str(tmp_path / "shard-0.pkl")
        sharding.write_shard(plan.shard_input(0), path)
        data = bytearray(open(path, "rb").read())
        data[-40] ^= 0xFF  # flip one byte inside the pickled shard blob
        open(path, "wb").write(bytes(data))
        with pytest.raises(ShardFormatError):
            sharding.read_shard(path)

    def test_truncated_outcome_shard_is_a_clean_error(self, tmp_path):
        plan = sharding.ShardPlan.build(_small_grid(), 2)
        path = str(tmp_path / "out-1.json")
        sharding.write_outcome_shard(sharding.execute_shard(plan.shard_input(1)), path)
        text = open(path, encoding="utf-8").read()
        open(path, "w", encoding="utf-8").write(text[: len(text) // 2])
        with pytest.raises(ShardFormatError, match="out-1.json"):
            sharding.read_outcome_shard(path)

    def test_tampered_outcome_shard_fails_the_checksum(self, tmp_path):
        plan = sharding.ShardPlan.build(_small_grid(), 2)
        path = str(tmp_path / "out-1.json")
        sharding.write_outcome_shard(sharding.execute_shard(plan.shard_input(1)), path)
        payload = json.loads(open(path, encoding="utf-8").read())
        payload["rows"][0]["runtime_seconds"] = 1234.5  # edit without re-checksumming
        open(path, "w", encoding="utf-8").write(json.dumps(payload))
        with pytest.raises(ShardFormatError, match="checksum mismatch"):
            sharding.read_outcome_shard(path)

    def test_legacy_payload_without_checksum_still_reads(self, tmp_path):
        plan = sharding.ShardPlan.build(_small_grid(), 2)
        shard = sharding.execute_shard(plan.shard_input(1))
        payload = sharding.outcome_shard_to_payload(shard)
        payload.pop("payload_sha256")
        path = str(tmp_path / "out-legacy.json")
        open(path, "w", encoding="utf-8").write(dump_json(payload))
        clone = sharding.read_outcome_shard(path)
        assert deterministic_rows(clone.outcomes) == deterministic_rows(shard.outcomes)

    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        plan = sharding.ShardPlan.build(_small_grid(), 2)
        sharding.write_shard(plan.shard_input(0), str(tmp_path / "shard-0.pkl"))
        shard = sharding.execute_shard(plan.shard_input(1))
        sharding.write_outcome_shard(shard, str(tmp_path / "out-1.json"))
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            "out-1.json",
            "shard-0.pkl",
        ]


class TestCheckpointResume:
    def _plan(self):
        return sharding.ShardPlan.build(_small_grid(), 2)

    def test_fresh_run_journals_every_cell(self, tmp_path):
        plan = self._plan()
        shard_input = plan.shard_input(0)
        ckpt = str(tmp_path / "ckpt.jsonl")
        shard = sharding.execute_shard(shard_input, checkpoint_path=ckpt)
        completed, header_valid = sharding.load_shard_checkpoint(ckpt, shard_input)
        assert header_valid
        assert sorted(completed) == list(shard_input.indices)
        assert deterministic_rows(
            [completed[g] for g in shard_input.indices]
        ) == deterministic_rows(shard.outcomes)

    def test_resume_skips_journaled_cells_and_matches_full_run(self, tmp_path):
        plan = self._plan()
        shard_input = plan.shard_input(0)
        full = sharding.execute_shard(shard_input)
        ckpt = tmp_path / "ckpt.jsonl"
        sharding.execute_shard(shard_input, checkpoint_path=str(ckpt))
        # Keep the header and the first journaled cell only (a crash).
        lines = ckpt.read_text().splitlines(keepends=True)
        ckpt.write_text("".join(lines[:2]))
        resumed = sharding.execute_shard(shard_input, checkpoint_path=str(ckpt))
        assert deterministic_rows(resumed.outcomes) == deterministic_rows(full.outcomes)
        assert work_counters(resumed.counters) == work_counters(full.counters)

    def test_torn_final_line_is_dropped(self, tmp_path):
        plan = self._plan()
        shard_input = plan.shard_input(0)
        ckpt = tmp_path / "ckpt.jsonl"
        sharding.execute_shard(shard_input, checkpoint_path=str(ckpt))
        text = ckpt.read_text()
        ckpt.write_text(text[: len(text) - 20])  # tear the last record
        completed, header_valid = sharding.load_shard_checkpoint(
            str(ckpt), shard_input
        )
        assert header_valid
        assert len(completed) == len(shard_input.indices) - 1

    def test_missing_or_empty_checkpoint_is_a_fresh_start(self, tmp_path):
        shard_input = self._plan().shard_input(0)
        missing = str(tmp_path / "nope.jsonl")
        assert sharding.load_shard_checkpoint(missing, shard_input) == ({}, False)
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert sharding.load_shard_checkpoint(str(empty), shard_input) == ({}, False)

    def test_foreign_checkpoint_rejected(self, tmp_path):
        plan = self._plan()
        ckpt = tmp_path / "ckpt.jsonl"
        sharding.execute_shard(plan.shard_input(0), checkpoint_path=str(ckpt))
        with pytest.raises(ShardFormatError):
            sharding.load_shard_checkpoint(str(ckpt), plan.shard_input(1))

    def test_interior_garbage_is_a_clean_error(self, tmp_path):
        plan = self._plan()
        shard_input = plan.shard_input(0)
        ckpt = tmp_path / "ckpt.jsonl"
        sharding.execute_shard(shard_input, checkpoint_path=str(ckpt))
        lines = ckpt.read_text().splitlines(keepends=True)
        lines.insert(1, "{not json}\n")
        ckpt.write_text("".join(lines))
        with pytest.raises(ShardFormatError, match="ckpt.jsonl"):
            sharding.load_shard_checkpoint(str(ckpt), shard_input)


class TestPartialMerge:
    def _shards(self):
        plan = sharding.ShardPlan.build(_small_grid(), 3)
        return plan, [sharding.execute_shard(plan.shard_input(i)) for i in range(3)]

    def test_missing_shard_without_allow_partial_suggests_recovery(self):
        plan, shards = self._shards()
        with pytest.raises(ExperimentError, match="allow_partial"):
            sharding.merge_shards([shards[0], shards[2]], plan=plan)

    def test_partial_merge_reports_missing_cells(self):
        plan, shards = self._shards()
        merged = sharding.merge_shards(
            [shards[0], shards[2]], plan=plan, allow_partial=True
        )
        assert not merged.is_complete
        assert merged.missing_shards == (1,)
        assert merged.missing_cells == tuple(plan.shard_input(1).indices)
        holes = [i for i, o in enumerate(merged.outcomes) if o is None]
        assert tuple(holes) == merged.missing_cells
        # Present cells are byte-identical to their full-merge values.
        full = sharding.merge_shards(shards, plan=plan)
        for index, outcome in enumerate(merged.outcomes):
            if outcome is not None:
                assert deterministic_rows([outcome]) == deterministic_rows(
                    [full.outcomes[index]]
                )

    def test_complete_partial_merge_is_complete(self):
        plan, shards = self._shards()
        merged = sharding.merge_shards(shards, plan=plan, allow_partial=True)
        assert merged.is_complete
        assert merged.missing_shards == ()
        assert merged.missing_cells == ()

    def test_duplicates_rejected_even_with_allow_partial(self):
        plan, shards = self._shards()
        with pytest.raises(ExperimentError, match="exactly once"):
            sharding.merge_shards(
                [shards[0], shards[0]], plan=plan, allow_partial=True
            )
