"""Unit tests for hill-climbing fine tuning."""

import pytest

from repro.circuits import gates as g
from repro.circuits.circuit import QuantumCircuit
from repro.core.fine_tuning import (
    default_cost_function,
    fine_tune_workspace_placement,
    hill_climb,
)
from repro.timing.scheduler import circuit_runtime


class TestHillClimb:
    def test_finds_optimum_on_encoder(self, acetyl, encoder_circuit):
        cost = default_cost_function(encoder_circuit, acetyl)
        start = {"a": "M", "b": "C2", "c": "C1"}  # the 770-unit placement
        best, best_cost = hill_climb(
            start, cost, movable_qubits=["a", "b", "c"], allowed_nodes=list(acetyl.nodes)
        )
        assert best_cost == 136.0
        assert best == {"a": "C2", "b": "C1", "c": "M"}

    def test_never_worse_than_start(self, acetyl, encoder_circuit):
        cost = default_cost_function(encoder_circuit, acetyl)
        start = {"a": "C2", "b": "C1", "c": "M"}
        best, best_cost = hill_climb(
            start, cost, movable_qubits=["a", "b", "c"], allowed_nodes=list(acetyl.nodes)
        )
        assert best_cost <= cost(start)

    def test_zero_rounds_returns_start(self, acetyl, encoder_circuit):
        cost = default_cost_function(encoder_circuit, acetyl)
        start = {"a": "M", "b": "C2", "c": "C1"}
        best, best_cost = hill_climb(
            start, cost, movable_qubits=["a", "b", "c"],
            allowed_nodes=list(acetyl.nodes), max_rounds=0,
        )
        assert best == start
        assert best_cost == 770.0

    def test_moves_to_free_nodes(self, crotonic):
        circuit = QuantumCircuit(["q0", "q1"], [g.zz("q0", "q1", 90.0)])
        cost = default_cost_function(circuit, crotonic)
        # Start on the slowest bond; the climb should find a faster pair,
        # possibly using nodes that are currently free.
        start = {"q0": "C3", "q1": "C4"}
        best, best_cost = hill_climb(
            start, cost, movable_qubits=["q0", "q1"],
            allowed_nodes=list(crotonic.nodes),
        )
        assert best_cost <= crotonic.pair_delay("C3", "C4")

    def test_swap_move_keeps_placement_injective(self, acetyl, encoder_circuit):
        cost = default_cost_function(encoder_circuit, acetyl)
        start = {"a": "M", "b": "C2", "c": "C1"}
        best, _ = hill_climb(
            start, cost, movable_qubits=["a", "b", "c"], allowed_nodes=list(acetyl.nodes)
        )
        assert len(set(best.values())) == 3


class TestFineTuneWorkspacePlacement:
    def test_improves_encoder_placement(self, acetyl, encoder_circuit):
        placement, runtime = fine_tune_workspace_placement(
            encoder_circuit,
            {"a": "M", "b": "C2", "c": "C1"},
            acetyl,
            allowed_nodes=list(acetyl.nodes),
        )
        assert runtime == 136.0
        assert circuit_runtime(encoder_circuit, placement, acetyl) == 136.0

    def test_extra_cost_influences_result(self, acetyl, encoder_circuit):
        # An extra cost that heavily penalises moving qubit "a" off node M
        # keeps it pinned there even though the runtime alone prefers C2.
        def penalty(placement):
            return 0.0 if placement["a"] == "M" else 1e9

        placement, _ = fine_tune_workspace_placement(
            encoder_circuit,
            {"a": "M", "b": "C2", "c": "C1"},
            acetyl,
            allowed_nodes=list(acetyl.nodes),
            extra_cost=penalty,
        )
        assert placement["a"] == "M"

    def test_circuit_without_two_qubit_gates(self, acetyl):
        circuit = QuantumCircuit(["a"], [g.ry("a", 90.0)])
        placement, runtime = fine_tune_workspace_placement(
            circuit, {"a": "M"}, acetyl, allowed_nodes=list(acetyl.nodes)
        )
        assert runtime == 1.0  # moved to C2, the fastest nucleus
