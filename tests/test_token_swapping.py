"""Unit tests for the greedy token-swapping baseline router."""

import random

import networkx as nx
import pytest

from repro.exceptions import RoutingError
from repro.routing.permutation import Permutation
from repro.routing.token_swapping import (
    greedy_token_swapping,
    pack_layers,
    route_permutation_greedy,
)
from repro.simulation.verify import verify_routing_layers


class TestGreedyTokenSwapping:
    def test_identity_needs_no_swaps(self):
        graph = nx.path_graph(4)
        assert greedy_token_swapping(graph, Permutation.identity(range(4))) == []

    def test_transposition_on_edge(self):
        graph = nx.path_graph(3)
        swaps = greedy_token_swapping(graph, {0: 1, 1: 0})
        assert len(swaps) == 1

    def test_reversal_on_path_uses_quadratic_swaps(self):
        n = 6
        graph = nx.path_graph(n)
        swaps = greedy_token_swapping(graph, {i: n - 1 - i for i in range(n)})
        assert len(swaps) <= n * (n - 1) // 2 + n

    def test_unreachable_target_raises(self):
        graph = nx.Graph([(0, 1), (2, 3)])
        with pytest.raises(RoutingError):
            greedy_token_swapping(graph, {0: 3, 3: 0})

    def test_random_permutations_delivered(self):
        rng = random.Random(5)
        graph = nx.convert_node_labels_to_integers(nx.grid_2d_graph(3, 3))
        nodes = list(graph.nodes())
        for _ in range(8):
            shuffled = list(nodes)
            rng.shuffle(shuffled)
            permutation = dict(zip(nodes, shuffled))
            result = route_permutation_greedy(graph, permutation)
            assert verify_routing_layers(result.layers, permutation)


class TestPackLayers:
    def test_disjoint_swaps_share_a_layer(self):
        layers = pack_layers([(0, 1), (2, 3)])
        assert len(layers) == 1

    def test_conflicting_swaps_get_separate_layers(self):
        layers = pack_layers([(0, 1), (1, 2)])
        assert len(layers) == 2

    def test_packing_preserves_order_per_node(self):
        layers = pack_layers([(0, 1), (1, 2), (0, 1)])
        flattened = [swap for layer in layers for swap in layer]
        assert flattened.count((0, 1)) == 2

    def test_empty_input(self):
        assert pack_layers([]) == []


class TestComparisonWithBubbleRouter:
    def test_both_routers_realise_the_same_permutation(self, crotonic):
        from repro.routing.bubble import route_permutation

        graph = crotonic.adjacency_graph(100.0)
        permutation = {
            "M": "C4", "C4": "M", "C1": "C3", "C3": "C1",
            "C2": "C2", "H1": "H2", "H2": "H1",
        }
        bubble = route_permutation(graph, permutation)
        greedy = route_permutation_greedy(graph, permutation)
        assert verify_routing_layers(bubble.layers, permutation)
        assert verify_routing_layers(greedy.layers, permutation)
