"""Unit tests for trace rendering (Table 1 layout)."""

from repro.timing.scheduler import schedule
from repro.timing.trace import format_trace, trace_rows


class TestTraceRows:
    def test_rows_follow_requested_qubit_order(self, acetyl, encoder_circuit):
        result = schedule(encoder_circuit, {"a": "M", "b": "C2", "c": "C1"}, acetyl)
        rows = trace_rows(result, qubit_order=["a", "b", "c"])
        assert [row[0] for row in rows] == ["a", "b", "c"]

    def test_rows_contain_table1_values(self, acetyl, encoder_circuit):
        result = schedule(encoder_circuit, {"a": "M", "b": "C2", "c": "C1"}, acetyl)
        rows = trace_rows(result, qubit_order=["a", "b", "c"])
        assert rows[0][1:] == ["8", "680", "680", "680", "680"]
        assert rows[1][1:] == ["0", "680", "680", "769", "770"]
        assert rows[2][1:] == ["0", "0", "8", "769", "769"]

    def test_default_order_is_sorted(self, acetyl, encoder_circuit):
        result = schedule(encoder_circuit, {"a": "M", "b": "C2", "c": "C1"}, acetyl)
        rows = trace_rows(result)
        assert [row[0] for row in rows] == ["a", "b", "c"]


class TestFormatTrace:
    def test_formatted_trace_contains_final_runtime(self, acetyl, encoder_circuit):
        result = schedule(encoder_circuit, {"a": "M", "b": "C2", "c": "C1"}, acetyl)
        text = format_trace(result, qubit_order=["a", "b", "c"])
        assert "770" in text
        assert text.splitlines()[0].startswith("time[ ]")

    def test_formatted_trace_has_one_line_per_qubit_plus_header(
        self, acetyl, encoder_circuit
    ):
        result = schedule(encoder_circuit, {"a": "M", "b": "C2", "c": "C1"}, acetyl)
        text = format_trace(result)
        assert len(text.splitlines()) == 4
