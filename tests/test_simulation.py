"""Unit tests for the statevector simulator and gate unitaries."""

import math

import numpy as np
import pytest

from repro.circuits import gates as g
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.library import qft_circuit
from repro.exceptions import SimulationError
from repro.simulation.statevector import (
    StatevectorSimulator,
    circuit_unitary,
    statevector,
)
from repro.simulation.unitaries import (
    gate_unitary,
    is_unitary,
    quantum_fourier_transform_matrix,
    rx_matrix,
    ry_matrix,
    rz_matrix,
    zz_matrix,
)


class TestUnitaries:
    @pytest.mark.parametrize("matrix_fn", [rx_matrix, ry_matrix, rz_matrix, zz_matrix])
    @pytest.mark.parametrize("angle", [0.0, 45.0, 90.0, 180.0, -90.0])
    def test_rotation_matrices_are_unitary(self, matrix_fn, angle):
        assert is_unitary(matrix_fn(angle))

    def test_rx_90_matches_paper_formula(self):
        matrix = rx_matrix(90.0)
        c = math.cos(math.pi / 4)
        assert matrix[0, 0] == pytest.approx(c)
        assert matrix[0, 1] == pytest.approx(-1j * c)

    def test_zz_matrix_diagonal_structure(self):
        matrix = zz_matrix(90.0)
        assert np.allclose(matrix, np.diag(np.diag(matrix)))
        assert matrix[0, 0] == pytest.approx(matrix[3, 3])
        assert matrix[1, 1] == pytest.approx(matrix[2, 2])

    def test_gate_unitary_dispatch(self):
        assert gate_unitary(g.hadamard("a")).shape == (2, 2)
        assert gate_unitary(g.cnot("a", "b")).shape == (4, 4)
        assert gate_unitary(g.swap("a", "b")).shape == (4, 4)
        assert gate_unitary(g.zz("a", "b", 45.0)).shape == (4, 4)

    def test_generic_gate_has_no_unitary(self):
        with pytest.raises(SimulationError):
            gate_unitary(g.generic_2q("a", "b", 3.0))

    def test_every_dispatchable_gate_is_unitary(self):
        for gate in [
            g.rx("a", 37.0), g.ry("a", 122.0), g.rz("a", -45.0),
            g.hadamard("a"), g.pauli_x("a"), g.pauli_y("a"), g.pauli_z("a"),
            g.zz("a", "b", 61.0), g.cnot("a", "b"), g.cz("a", "b"),
            g.swap("a", "b"), g.controlled_phase("a", "b", 30.0),
        ]:
            assert is_unitary(gate_unitary(gate))


class TestSimulator:
    def test_zero_state(self):
        sim = StatevectorSimulator(["a", "b"])
        state = sim.zero_state()
        assert state[0] == 1.0
        assert np.sum(np.abs(state)) == 1.0

    def test_basis_state(self):
        sim = StatevectorSimulator(["a", "b"])
        state = sim.basis_state({"a": 1})
        assert state[1] == 1.0  # qubit "a" is bit 0

    def test_pauli_x_flips_basis_state(self):
        circuit = QuantumCircuit(["a"], [g.pauli_x("a")])
        state = statevector(circuit)
        assert abs(state[1]) == pytest.approx(1.0)

    def test_cnot_on_flipped_control(self):
        circuit = QuantumCircuit(["c", "t"], [g.pauli_x("c"), g.cnot("c", "t")])
        state = statevector(circuit)
        # Both qubits end in |1>: index 0b11 = 3.
        assert abs(state[3]) == pytest.approx(1.0)

    def test_hadamard_creates_uniform_superposition(self):
        circuit = QuantumCircuit(["a"], [g.hadamard("a")])
        probabilities = np.abs(statevector(circuit)) ** 2
        assert probabilities == pytest.approx([0.5, 0.5])

    def test_swap_gate_exchanges_values(self):
        circuit = QuantumCircuit(["a", "b"], [g.pauli_x("a"), g.swap("a", "b")])
        state = statevector(circuit)
        assert abs(state[0b10]) == pytest.approx(1.0)  # b now holds the 1

    def test_state_norm_preserved(self):
        circuit = qft_circuit(4)
        state = statevector(circuit)
        assert np.linalg.norm(state) == pytest.approx(1.0)

    def test_marginal_probability(self):
        sim = StatevectorSimulator(["a", "b"])
        circuit = QuantumCircuit(["a", "b"], [g.hadamard("a")])
        state = sim.run(circuit)
        assert sim.marginal_probability(state, "a", 1) == pytest.approx(0.5)
        assert sim.marginal_probability(state, "b", 1) == pytest.approx(0.0)

    def test_unknown_circuit_qubit_rejected(self):
        sim = StatevectorSimulator(["a"])
        with pytest.raises(SimulationError):
            sim.run(QuantumCircuit(["z"], [g.rx("z")]))

    def test_too_many_qubits_rejected(self):
        with pytest.raises(SimulationError):
            StatevectorSimulator(list(range(20)))

    def test_duplicate_qubits_rejected(self):
        with pytest.raises(SimulationError):
            StatevectorSimulator(["a", "a"])


class TestCircuitUnitary:
    def test_unitary_of_unitary_circuit_is_unitary(self):
        assert is_unitary(circuit_unitary(qft_circuit(3)))

    def test_qft_circuit_matches_exact_qft_up_to_bit_reversal(self):
        num_qubits = 3
        dimension = 2 ** num_qubits
        exact = quantum_fourier_transform_matrix(num_qubits)
        reversal = np.zeros((dimension, dimension))
        for index in range(dimension):
            reversed_index = int(format(index, f"0{num_qubits}b")[::-1], 2)
            reversal[reversed_index, index] = 1
        # The simulator orders basis states with qubit 0 as the least
        # significant bit while the circuit treats qubit 0 as the most
        # significant, so the circuit equals the exact QFT composed with the
        # bit-reversal permutation (and the optional final SWAPs apply the
        # reversal on the output side as well).
        unitary_plain = circuit_unitary(qft_circuit(num_qubits))
        unitary_swapped = circuit_unitary(qft_circuit(num_qubits, include_final_swaps=True))
        assert np.allclose(unitary_plain, exact @ reversal, atol=1e-9)
        assert np.allclose(unitary_swapped, reversal @ exact @ reversal, atol=1e-9)

    def test_gate_order_is_left_to_right_in_time(self):
        circuit = QuantumCircuit(["a"], [g.pauli_x("a"), g.hadamard("a")])
        unitary = circuit_unitary(circuit)
        expected = gate_unitary(g.hadamard("a")) @ gate_unitary(g.pauli_x("a"))
        assert np.allclose(unitary, expected)
