"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.circuits.library import qec3_encoder, qft_circuit
from repro.hardware.architectures import grid, linear_chain
from repro.hardware.molecules import acetyl_chloride, histidine, trans_crotonic_acid


@pytest.fixture
def encoder_circuit():
    """The paper's Figure 2 circuit (3-qubit error-correction encoder)."""
    return qec3_encoder()


@pytest.fixture
def acetyl():
    """The acetyl chloride molecule of Figure 1."""
    return acetyl_chloride()


@pytest.fixture
def crotonic():
    """The 7-qubit trans-crotonic acid molecule."""
    return trans_crotonic_acid()


@pytest.fixture
def histidine_env():
    """The 12-qubit histidine molecule."""
    return histidine()


@pytest.fixture
def chain8():
    """An 8-qubit linear nearest-neighbour chain."""
    return linear_chain(8)


@pytest.fixture
def grid3x3():
    """A 3x3 grid architecture."""
    return grid(3, 3)


@pytest.fixture
def qft4():
    """A 4-qubit exact QFT circuit."""
    return qft_circuit(4)
