"""Unit tests for the circuit text format."""

import pytest

from repro.circuits import gates as g
from repro.circuits import qasm
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.library import qec3_encoder
from repro.exceptions import SerializationError


ENCODER_TEXT = """
# 3-qubit error-correction encoder
qubits a b c
Ry(90) a
ZZ(90) a b
Rz(-90) a
Rz(90) b
Ry(90) c
ZZ(90) b c
Rz(90) b
Rz(-90) c
Ry(90) b
"""


class TestLoads:
    def test_parse_encoder(self):
        circuit = qasm.loads(ENCODER_TEXT)
        assert circuit.num_qubits == 3
        assert circuit.num_gates == 9
        assert circuit == QuantumCircuit(
            ["a", "b", "c"], qec3_encoder().gates, name="x"
        ) or circuit.gates == qec3_encoder().gates

    def test_comments_and_blank_lines_ignored(self):
        circuit = qasm.loads("qubits q\n\n# comment only\nRx(90) q  # trailing\n")
        assert circuit.num_gates == 1

    def test_plain_gates(self):
        circuit = qasm.loads("qubits a b\nCNOT a b\nH a\nSWAP a b\n")
        assert [gate.name for gate in circuit] == ["CNOT", "H", "SWAP"]

    def test_generic_gate_with_duration(self):
        circuit = qasm.loads("qubits a b\nMYGATE a b duration=2.5\n")
        assert circuit[0].duration == 2.5
        assert circuit[0].name == "MYGATE"

    def test_missing_qubits_declaration(self):
        with pytest.raises(SerializationError):
            qasm.loads("Rx(90) a\n")

    def test_duplicate_qubits_declaration(self):
        with pytest.raises(SerializationError):
            qasm.loads("qubits a\nqubits b\n")

    def test_empty_input(self):
        with pytest.raises(SerializationError):
            qasm.loads("   \n# nothing\n")

    def test_unknown_parametrised_gate(self):
        with pytest.raises(SerializationError):
            qasm.loads("qubits a\nFOO(90) a\n")

    def test_wrong_operand_count(self):
        with pytest.raises(SerializationError):
            qasm.loads("qubits a b\nZZ(90) a\n")
        with pytest.raises(SerializationError):
            qasm.loads("qubits a b\nCNOT a\n")

    def test_gate_on_undeclared_qubit(self):
        with pytest.raises(SerializationError):
            qasm.loads("qubits a\nRx(90) z\n")


class TestRoundTrip:
    def test_encoder_round_trip(self):
        circuit = qec3_encoder()
        restored = qasm.loads(qasm.dumps(circuit))
        assert restored.gates == circuit.gates
        assert restored.qubits == circuit.qubits

    def test_mixed_circuit_round_trip(self):
        circuit = QuantumCircuit(
            ["a", "b", "c"],
            [
                g.hadamard("a"),
                g.cnot("a", "b"),
                g.controlled_phase("b", "c", 45.0),
                g.generic_2q("a", "c", 3.0, name="U2"),
            ],
        )
        restored = qasm.loads(qasm.dumps(circuit))
        assert restored.num_gates == 4
        assert restored[2].duration == pytest.approx(circuit[2].duration)
        assert restored[3].duration == 3.0

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "circuit.qc"
        qasm.dump(qec3_encoder(), str(path))
        restored = qasm.load(str(path))
        assert restored.num_gates == 9
