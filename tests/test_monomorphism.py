"""Unit tests for the subgraph monomorphism enumerator."""

import itertools

import networkx as nx
import pytest

from repro.core.monomorphism import (
    count_monomorphisms,
    find_monomorphisms,
    first_monomorphism,
    has_monomorphism,
    iter_monomorphisms,
    verify_monomorphism,
)
from repro.exceptions import MonomorphismError


class TestBasics:
    def test_empty_pattern_has_trivial_monomorphism(self):
        assert has_monomorphism(nx.Graph(), nx.path_graph(3))
        assert first_monomorphism(nx.Graph(), nx.path_graph(3)) == {}

    def test_single_edge_into_path(self):
        pattern = nx.Graph([(0, 1)])
        host = nx.path_graph(3)
        mappings = find_monomorphisms(pattern, host, max_count=100)
        assert len(mappings) == 4  # 2 host edges x 2 orientations
        for mapping in mappings:
            assert verify_monomorphism(pattern, host, mapping)

    def test_pattern_larger_than_host_has_none(self):
        assert not has_monomorphism(nx.path_graph(4), nx.path_graph(3))

    def test_triangle_into_tree_has_none(self):
        triangle = nx.cycle_graph(3)
        tree = nx.balanced_tree(2, 3)
        assert not has_monomorphism(triangle, tree)

    def test_first_monomorphism_raises_when_none(self):
        with pytest.raises(MonomorphismError):
            first_monomorphism(nx.cycle_graph(3), nx.path_graph(5))

    def test_path_into_cycle(self):
        pattern = nx.path_graph(4)
        host = nx.cycle_graph(6)
        mapping = first_monomorphism(pattern, host)
        assert verify_monomorphism(pattern, host, mapping)

    def test_max_count_caps_enumeration(self):
        pattern = nx.Graph([(0, 1)])
        host = nx.complete_graph(6)
        assert len(find_monomorphisms(pattern, host, max_count=7)) == 7

    def test_count_monomorphisms_complete_host(self):
        pattern = nx.path_graph(3)
        host = nx.complete_graph(4)
        # Injective maps of a labelled 3-path into K4: 4*3*2 = 24.
        assert count_monomorphisms(pattern, host) == 24

    def test_iterator_is_lazy(self):
        pattern = nx.Graph([(0, 1)])
        host = nx.complete_graph(30)
        iterator = iter_monomorphisms(pattern, host)
        assert next(iterator) is not None


class TestAgainstNetworkx:
    """Cross-check against networkx's GraphMatcher (monomorphism mode)."""

    @pytest.mark.parametrize("seed", range(5))
    def test_existence_matches_networkx(self, seed):
        rng_host = nx.gnp_random_graph(7, 0.4, seed=seed)
        rng_pattern = nx.gnp_random_graph(4, 0.5, seed=seed + 100)
        # Only compare when both graphs have no isolated pattern complication.
        matcher = nx.algorithms.isomorphism.GraphMatcher(rng_host, rng_pattern)
        expected = matcher.subgraph_is_monomorphic()
        assert has_monomorphism(rng_pattern, rng_host) == expected

    def test_mapping_validity_on_molecule_host(self, crotonic):
        host = crotonic.adjacency_graph(100.0)
        pattern = nx.path_graph(5)
        for mapping in find_monomorphisms(pattern, host, max_count=50):
            assert verify_monomorphism(pattern, host, mapping)


class TestVerifyMonomorphism:
    def test_rejects_incomplete_mapping(self):
        pattern = nx.path_graph(3)
        host = nx.path_graph(5)
        assert not verify_monomorphism(pattern, host, {0: 0, 1: 1})

    def test_rejects_non_injective(self):
        pattern = nx.path_graph(3)
        host = nx.path_graph(5)
        assert not verify_monomorphism(pattern, host, {0: 0, 1: 1, 2: 0})

    def test_rejects_non_edge_image(self):
        pattern = nx.path_graph(3)
        host = nx.path_graph(5)
        assert not verify_monomorphism(pattern, host, {0: 0, 1: 1, 2: 4})
