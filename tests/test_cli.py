"""Tests of the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.circuits import qasm
from repro.circuits.library import qec3_encoder
from repro.hardware import io as hio
from repro.hardware.molecules import acetyl_chloride


class TestParser:
    def test_parser_has_three_subcommands(self):
        parser = build_parser()
        actions = [a for a in parser._actions if hasattr(a, "choices") and a.choices]
        subcommands = set(actions[0].choices)
        assert subcommands == {"place", "sweep", "list"}

    def test_missing_subcommand_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "qft6" in output
        assert "acetyl-chloride" in output

    def test_place_benchmark_on_molecule(self, capsys):
        code = main(["place", "error-correction-encoding", "acetyl-chloride"])
        assert code == 0
        output = capsys.readouterr().out
        assert "0.0136" in output
        assert "stage 0" in output

    def test_place_with_threshold_flag(self, capsys):
        code = main(
            ["place", "phaseest", "trans-crotonic-acid", "--threshold", "100"]
        )
        assert code == 0
        assert "subcircuit" in capsys.readouterr().out

    def test_place_from_files(self, tmp_path, capsys):
        circuit_path = tmp_path / "encoder.qc"
        env_path = tmp_path / "molecule.json"
        qasm.dump(qec3_encoder(), str(circuit_path))
        hio.save(acetyl_chloride(), str(env_path))
        code = main(["place", str(circuit_path), str(env_path)])
        assert code == 0
        assert "0.0136" in capsys.readouterr().out

    def test_sweep_command(self, capsys):
        code = main(
            ["sweep", "error-correction-encoding", "acetyl-chloride",
             "--thresholds", "50", "100"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "threshold 50" in output
        assert "threshold 100" in output

    def test_sweep_jobs_flag_matches_serial_output(self, capsys):
        args = ["sweep", "error-correction-encoding", "acetyl-chloride",
                "--thresholds", "50", "100", "200"]
        assert main(args) == 0
        serial = capsys.readouterr().out
        assert main(args + ["--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert parallel == serial

    def test_sweep_progress_flag_reports_cells(self, capsys):
        code = main(
            ["sweep", "error-correction-encoding", "acetyl-chloride",
             "--thresholds", "100", "--progress"]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "sweep cell 1/1" in captured.err

    def test_unknown_circuit_is_a_clean_error(self, capsys):
        code = main(["place", "not-a-circuit", "acetyl-chloride"])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_unknown_molecule_is_a_clean_error(self, capsys):
        code = main(["place", "qft6", "not-a-molecule"])
        assert code == 1
        assert "error:" in capsys.readouterr().err
