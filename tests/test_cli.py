"""Tests of the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.circuits import qasm
from repro.circuits.library import qec3_encoder
from repro.config import RunConfig
from repro.core.config import PlacementOptions
from repro.hardware import io as hio
from repro.hardware.molecules import acetyl_chloride


class TestParser:
    def test_parser_subcommands(self):
        parser = build_parser()
        actions = [a for a in parser._actions if hasattr(a, "choices") and a.choices]
        subcommands = set(actions[0].choices)
        assert subcommands == {"place", "sweep", "shard", "list"}

    def test_missing_subcommand_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "qft6" in output
        assert "acetyl-chloride" in output

    def test_place_benchmark_on_molecule(self, capsys):
        code = main(["place", "error-correction-encoding", "acetyl-chloride"])
        assert code == 0
        output = capsys.readouterr().out
        assert "0.0136" in output
        assert "stage 0" in output

    def test_place_with_threshold_flag(self, capsys):
        code = main(
            ["place", "phaseest", "trans-crotonic-acid", "--threshold", "100"]
        )
        assert code == 0
        assert "subcircuit" in capsys.readouterr().out

    def test_place_from_files(self, tmp_path, capsys):
        circuit_path = tmp_path / "encoder.qc"
        env_path = tmp_path / "molecule.json"
        qasm.dump(qec3_encoder(), str(circuit_path))
        hio.save(acetyl_chloride(), str(env_path))
        code = main(["place", str(circuit_path), str(env_path)])
        assert code == 0
        assert "0.0136" in capsys.readouterr().out

    def test_sweep_command(self, capsys):
        code = main(
            ["sweep", "error-correction-encoding", "acetyl-chloride",
             "--thresholds", "50", "100"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "threshold 50" in output
        assert "threshold 100" in output

    def test_sweep_jobs_flag_matches_serial_output(self, capsys):
        args = ["sweep", "error-correction-encoding", "acetyl-chloride",
                "--thresholds", "50", "100", "200"]
        assert main(args) == 0
        serial = capsys.readouterr().out
        assert main(args + ["--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert parallel == serial

    def test_sweep_progress_flag_reports_cells(self, capsys):
        code = main(
            ["sweep", "error-correction-encoding", "acetyl-chloride",
             "--thresholds", "100", "--progress"]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "sweep cell 1/1" in captured.err

    def test_unknown_circuit_is_a_usage_error(self, capsys):
        code = main(["place", "not-a-circuit", "acetyl-chloride"])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        # One line, listing the valid registry names.
        assert err.count("\n") == 1
        assert "qft6" in err
        assert "qft:N" in err

    def test_unknown_molecule_is_a_usage_error(self, capsys):
        code = main(["place", "qft6", "not-a-molecule"])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert err.count("\n") == 1
        assert "acetyl-chloride" in err
        assert "grid:NxM" in err

    def test_parameterised_specs_place(self, capsys):
        code = main(["place", "qft:4", "complete:6", "--threshold", "100"])
        assert code == 0
        assert "subcircuit" in capsys.readouterr().out

    def test_missing_positionals_without_config(self, capsys):
        code = main(["place"])
        assert code == 2
        assert "positional arguments or through --config" in capsys.readouterr().err


SWEEP_ARGS = ["error-correction-encoding", "acetyl-chloride",
              "--thresholds", "50", "100", "200"]


class TestJsonOutput:
    def test_place_json_row_and_counters(self, capsys):
        code = main(["place", "error-correction-encoding", "acetyl-chloride",
                     "--output", "json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        (row,) = payload["rows"]
        assert row["feasible"] is True
        assert row["runtime_seconds"] == pytest.approx(0.0136)
        assert payload["counters"]["monomorphism.searches"] > 0

    def test_place_json_infeasible_exits_nonzero(self, capsys):
        code = main(["place", "phaseest", "acetyl-chloride", "--output", "json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["rows"][0]["feasible"] is False
        assert payload["rows"][0]["error_type"]

    def test_sweep_json_cells_match_text_table(self, capsys):
        assert main(["sweep"] + SWEEP_ARGS + ["--output", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [cell["threshold"] for cell in payload["cells"]] == [50.0, 100.0, 200.0]
        assert payload["cells"][0]["feasible"] is False
        assert payload["cells"][1]["num_subcircuits"] == 1
        assert payload["counters"]
        # Deduplicated grid: 3 thresholds, but 100/200 share one cell.
        assert len(payload["rows"]) == 2


class TestShardPipeline:
    def test_plan_run_merge_matches_serial_sweep(self, tmp_path, capsys):
        assert main(["sweep"] + SWEEP_ARGS) == 0
        serial_table = capsys.readouterr().out

        out_dir = str(tmp_path / "shards")
        assert main(["shard", "plan"] + SWEEP_ARGS
                    + ["--shards", "2", "--out-dir", out_dir]) == 0
        assert "2 shard(s)" in capsys.readouterr().out
        outputs = []
        for index in range(2):
            out_file = str(tmp_path / f"out-{index}.json")
            assert main(["shard", "run",
                         "--shard-file", f"{out_dir}/shard-{index}.pkl",
                         "--out", out_file]) == 0
            capsys.readouterr()
            outputs.append(out_file)
        assert main(["shard", "merge", "--plan", f"{out_dir}/plan.json"]
                    + outputs) == 0
        assert capsys.readouterr().out == serial_table

    def test_sweep_shard_index_outputs_mergeable_shards(self, tmp_path, capsys):
        assert main(["sweep"] + SWEEP_ARGS) == 0
        serial_table = capsys.readouterr().out
        outputs = []
        for index in range(2):
            assert main(["sweep"] + SWEEP_ARGS
                        + ["--shards", "2", "--shard-index", str(index),
                           "--output", "json"]) == 0
            path = tmp_path / f"shard-{index}.json"
            path.write_text(capsys.readouterr().out)
            outputs.append(str(path))
        # Plan-less merge: generic payload, rows in grid order.
        assert main(["shard", "merge", "--output", "json"] + outputs) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [row["index"] for row in payload["rows"]] == [0, 1]
        assert payload["num_shards"] == 2
        # The shard invocations recompute the same plan fingerprint, so a
        # plan file from a separate invocation also verifies and renders
        # the serial sweep table.
        out_dir = str(tmp_path / "plandir")
        assert main(["shard", "plan"] + SWEEP_ARGS
                    + ["--shards", "2", "--out-dir", out_dir]) == 0
        capsys.readouterr()
        assert main(["shard", "merge", "--plan", f"{out_dir}/plan.json"]
                    + outputs) == 0
        assert capsys.readouterr().out == serial_table

    def test_merge_refuses_wrong_plan(self, tmp_path, capsys):
        out_dir = str(tmp_path / "shards")
        assert main(["shard", "plan"] + SWEEP_ARGS
                    + ["--shards", "1", "--out-dir", out_dir]) == 0
        out_file = str(tmp_path / "out-0.json")
        assert main(["shard", "run", "--shard-file", f"{out_dir}/shard-0.pkl",
                     "--out", out_file]) == 0
        other_dir = str(tmp_path / "other")
        assert main(["shard", "plan", "qft6", "trans-crotonic-acid",
                     "--thresholds", "100", "--shards", "1",
                     "--out-dir", other_dir]) == 0
        capsys.readouterr()
        code = main(["shard", "merge", "--plan", f"{other_dir}/plan.json",
                     out_file])
        assert code == 1
        assert "different grid" in capsys.readouterr().err

    def test_shard_invocations_merge_across_scheduler_backends(
        self, tmp_path, capsys
    ):
        # Backends are bit-identical, so shards run with different
        # --scheduler-backend flags must share a plan fingerprint and merge.
        outputs = []
        for index, backend in enumerate(["python", "auto"]):
            assert main(["sweep"] + SWEEP_ARGS
                        + ["--shards", "2", "--shard-index", str(index),
                           "--scheduler-backend", backend,
                           "--output", "json"]) == 0
            path = tmp_path / f"shard-{index}.json"
            path.write_text(capsys.readouterr().out)
            outputs.append(str(path))
        assert main(["shard", "merge", "--output", "json"] + outputs) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [row["index"] for row in payload["rows"]] == [0, 1]

    def test_merge_rejects_malformed_outcome_shard(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "repro-outcome-shard",
                                    "shard_index": 0}))
        code = main(["shard", "merge", str(path)])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_sweep_shards_without_index_is_a_usage_error(self, capsys):
        code = main(["sweep"] + SWEEP_ARGS + ["--shards", "2"])
        assert code == 2
        assert "--shard-index" in capsys.readouterr().err

    def test_out_of_range_shard_index_is_a_usage_error(self, capsys):
        code = main(["sweep"] + SWEEP_ARGS + ["--shards", "2", "--shard-index", "2"])
        assert code == 2
        err = capsys.readouterr().err
        assert "out of range" in err
        assert "0..1" in err

    def test_nonpositive_shards_is_a_usage_error(self, capsys):
        code = main(["sweep"] + SWEEP_ARGS + ["--shards", "0", "--shard-index", "0"])
        assert code == 2
        assert "shards must be a positive integer" in capsys.readouterr().err

    def test_shard_plan_without_shards_is_a_usage_error(self, tmp_path, capsys):
        code = main(["shard", "plan"] + SWEEP_ARGS
                    + ["--out-dir", str(tmp_path / "shards")])
        assert code == 2
        assert "--shards" in capsys.readouterr().err

    def test_progress_reports_throughput(self, capsys):
        code = main(["sweep", "error-correction-encoding", "acetyl-chloride",
                     "--thresholds", "100", "--progress"])
        assert code == 0
        err = capsys.readouterr().err
        assert "sweep cell 1/1" in err
        assert "cells/s" in err


class TestRunConfigFlag:
    def test_sweep_config_reproduces_flags_byte_for_byte(self, tmp_path, capsys):
        # The golden contract: `sweep --config run.json` is byte-identical
        # to the equivalent flag-based invocation.
        assert main(["sweep"] + SWEEP_ARGS) == 0
        from_flags = capsys.readouterr().out
        config = RunConfig(circuit="error-correction-encoding",
                           environment="acetyl-chloride",
                           thresholds=(50, 100, 200))
        path = tmp_path / "run.json"
        config.save(str(path))
        assert main(["sweep", "--config", str(path)]) == 0
        assert capsys.readouterr().out == from_flags

    def test_place_config_reproduces_flags_byte_for_byte(self, tmp_path, capsys):
        flags = ["place", "phaseest", "trans-crotonic-acid",
                 "--threshold", "100", "--no-fine-tuning"]
        assert main(flags) == 0
        from_flags = capsys.readouterr().out
        config = RunConfig(
            circuit="phaseest", environment="trans-crotonic-acid",
            options=PlacementOptions(threshold=100, fine_tuning=False),
        )
        path = tmp_path / "run.json"
        path.write_text(config.to_json())
        assert main(["place", "--config", str(path)]) == 0
        assert capsys.readouterr().out == from_flags

    def test_flags_override_config(self, tmp_path, capsys):
        config = RunConfig(circuit="error-correction-encoding",
                           environment="acetyl-chloride",
                           thresholds=(50,), output="json")
        path = tmp_path / "run.json"
        config.save(str(path))
        assert main(["sweep", "--config", str(path),
                     "--thresholds", "100", "--output", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [cell["threshold"] for cell in payload["cells"]] == [100.0]
        assert payload["cells"][0]["feasible"] is True

    def test_malformed_config_is_a_usage_error(self, tmp_path, capsys):
        path = tmp_path / "run.json"
        path.write_text('{"format": "repro-run-config", "circuit": "qft6", '
                        '"environment": "histidine", "jbos": 4}')
        code = main(["sweep", "--config", str(path)])
        assert code == 2
        err = capsys.readouterr().err
        assert "jbos" in err

    def test_shard_plan_embeds_config(self, tmp_path, capsys):
        out_dir = str(tmp_path / "shards")
        assert main(["shard", "plan"] + SWEEP_ARGS
                    + ["--shards", "2", "--out-dir", out_dir]) == 0
        capsys.readouterr()
        with open(f"{out_dir}/plan.json", "r", encoding="utf-8") as handle:
            metadata = json.load(handle)
        embedded = RunConfig.from_dict(metadata["config"])
        assert embedded.circuit == "error-correction-encoding"
        assert embedded.environment == "acetyl-chloride"
        assert embedded.thresholds == (50.0, 100.0, 200.0)
        assert embedded.shards == 2
        # The shard input files are self-describing too.
        from repro.analysis import sharding
        shard = sharding.read_shard(f"{out_dir}/shard-0.pkl")
        assert shard.config == embedded


class TestFaultTolerantCli:
    def _serial_table(self, capsys):
        assert main(["sweep"] + SWEEP_ARGS) == 0
        return capsys.readouterr().out

    def test_faulted_sweep_with_retries_matches_serial(self, capsys, monkeypatch):
        serial_table = self._serial_table(capsys)
        monkeypatch.setenv("REPRO_FAULT_PLAN", "0:raise;1:kill")
        assert main(["sweep"] + SWEEP_ARGS + ["--retries", "2"]) == 0
        assert capsys.readouterr().out == serial_table

    def test_resume_without_checkpoint_is_a_usage_error(self, tmp_path, capsys):
        out_dir = str(tmp_path / "shards")
        assert main(["shard", "plan"] + SWEEP_ARGS
                    + ["--shards", "2", "--out-dir", out_dir]) == 0
        capsys.readouterr()
        code = main(["shard", "run", "--shard-file", f"{out_dir}/shard-0.pkl",
                     "--out", str(tmp_path / "out.json"), "--resume"])
        assert code == 2
        assert "--checkpoint" in capsys.readouterr().err

    def test_checkpoint_resume_flow(self, tmp_path, capsys):
        serial_table = self._serial_table(capsys)
        out_dir = str(tmp_path / "shards")
        assert main(["shard", "plan"] + SWEEP_ARGS
                    + ["--shards", "2", "--out-dir", out_dir]) == 0
        capsys.readouterr()
        ckpt = tmp_path / "ckpt-0.jsonl"
        out_0 = str(tmp_path / "out-0.json")
        assert main(["shard", "run", "--shard-file", f"{out_dir}/shard-0.pkl",
                     "--out", out_0, "--checkpoint", str(ckpt)]) == 0
        capsys.readouterr()
        # Simulate a crash that lost the output but kept a partial journal.
        lines = ckpt.read_text().splitlines(keepends=True)
        ckpt.write_text("".join(lines[:2]))
        assert main(["shard", "run", "--shard-file", f"{out_dir}/shard-0.pkl",
                     "--out", out_0, "--checkpoint", str(ckpt), "--resume"]) == 0
        assert "resuming shard 0" in capsys.readouterr().out
        out_1 = str(tmp_path / "out-1.json")
        assert main(["shard", "run", "--shard-file", f"{out_dir}/shard-1.pkl",
                     "--out", out_1]) == 0
        capsys.readouterr()
        assert main(["shard", "merge", "--plan", f"{out_dir}/plan.json",
                     out_0, out_1]) == 0
        assert capsys.readouterr().out == serial_table

    def _plan_and_run_with_corrupt_shard(self, tmp_path, capsys, monkeypatch):
        """Plan 2 shards, run both with shard 1's output corrupted on write."""
        out_dir = str(tmp_path / "shards")
        assert main(["shard", "plan"] + SWEEP_ARGS
                    + ["--shards", "2", "--out-dir", out_dir]) == 0
        capsys.readouterr()
        monkeypatch.setenv("REPRO_FAULT_PLAN", "out:1")
        outputs = []
        for index in range(2):
            out_file = str(tmp_path / f"out-{index}.json")
            assert main(["shard", "run",
                         "--shard-file", f"{out_dir}/shard-{index}.pkl",
                         "--out", out_file]) == 0
            capsys.readouterr()
            outputs.append(out_file)
        monkeypatch.delenv("REPRO_FAULT_PLAN")
        return out_dir, outputs

    def test_merge_of_corrupt_shard_fails_closed(self, tmp_path, capsys,
                                                 monkeypatch):
        out_dir, outputs = self._plan_and_run_with_corrupt_shard(
            tmp_path, capsys, monkeypatch
        )
        assert main(["shard", "merge", "--plan", f"{out_dir}/plan.json"]
                    + outputs) == 1
        assert "out-1.json" in capsys.readouterr().err

    def test_allow_partial_merge_reports_gaps_and_suggests_replan(
        self, tmp_path, capsys, monkeypatch
    ):
        out_dir, outputs = self._plan_and_run_with_corrupt_shard(
            tmp_path, capsys, monkeypatch
        )
        assert main(["shard", "merge", "--plan", f"{out_dir}/plan.json",
                     "--allow-partial"] + outputs) == 0
        captured = capsys.readouterr()
        assert "partial merge" in captured.out
        assert "missing shard(s): [1]" in captured.out
        assert "shard replan" in captured.out
        assert "MISSING" in captured.out

    def test_replan_recovers_to_byte_identical_table(self, tmp_path, capsys,
                                                     monkeypatch):
        serial_table = self._serial_table(capsys)
        out_dir, outputs = self._plan_and_run_with_corrupt_shard(
            tmp_path, capsys, monkeypatch
        )
        recovery_dir = str(tmp_path / "recovery")
        assert main(["shard", "replan", "--plan", f"{out_dir}/plan.json",
                     "--out-dir", recovery_dir] + outputs) == 0
        assert "1 of 2 shard(s)" in capsys.readouterr().out
        recovered = str(tmp_path / "recovered-1.json")
        assert main(["shard", "run",
                     "--shard-file", f"{recovery_dir}/shard-1.pkl",
                     "--out", recovered]) == 0
        capsys.readouterr()
        assert main(["shard", "merge", "--plan", f"{out_dir}/plan.json",
                     outputs[0], recovered]) == 0
        assert capsys.readouterr().out == serial_table

    def test_replan_with_nothing_missing_is_a_no_op(self, tmp_path, capsys):
        out_dir = str(tmp_path / "shards")
        assert main(["shard", "plan"] + SWEEP_ARGS
                    + ["--shards", "2", "--out-dir", out_dir]) == 0
        capsys.readouterr()
        outputs = []
        for index in range(2):
            out_file = str(tmp_path / f"out-{index}.json")
            assert main(["shard", "run",
                         "--shard-file", f"{out_dir}/shard-{index}.pkl",
                         "--out", out_file]) == 0
            capsys.readouterr()
            outputs.append(out_file)
        assert main(["shard", "replan", "--plan", f"{out_dir}/plan.json",
                     "--out-dir", str(tmp_path / "recovery")] + outputs) == 0
        assert "nothing to replan" in capsys.readouterr().out
