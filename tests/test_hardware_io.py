"""Unit tests for environment JSON serialization."""

import math

import pytest

from repro.exceptions import SerializationError
from repro.hardware import io as hio
from repro.hardware.architectures import linear_chain
from repro.hardware.molecules import acetyl_chloride, all_molecules


class TestRoundTrip:
    def test_acetyl_chloride_round_trip(self):
        env = acetyl_chloride()
        restored = hio.loads(hio.dumps(env))
        assert restored.name == env.name
        assert set(restored.nodes) == set(env.nodes)
        assert restored.pair_delay("M", "C2") == 672.0
        assert restored.single_qubit_delay("C2") == 1.0

    def test_all_molecules_round_trip(self):
        for env in all_molecules():
            restored = hio.loads(hio.dumps(env))
            for (a, b), delay in env.explicit_pairs().items():
                assert restored.pair_delay(a, b) == delay

    def test_integer_labels_round_trip(self):
        env = linear_chain(4)
        restored = hio.loads(hio.dumps(env))
        assert set(restored.nodes) == {0, 1, 2, 3}
        assert restored.pair_delay(1, 2) == 10.0

    def test_infinite_default_round_trip(self):
        env = linear_chain(3)
        restored = hio.loads(hio.dumps(env))
        assert math.isinf(restored.default_pair_delay)

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "env.json"
        hio.save(acetyl_chloride(), str(path))
        restored = hio.load(str(path))
        assert restored.pair_delay("M", "C1") == 38.0


class TestErrors:
    def test_invalid_json(self):
        with pytest.raises(SerializationError):
            hio.loads("{not json")

    def test_missing_nodes_key(self):
        with pytest.raises(SerializationError):
            hio.from_dict({"pairs": []})

    def test_malformed_pair_entry(self):
        with pytest.raises(SerializationError):
            hio.from_dict({"nodes": {"a": 1.0, "b": 1.0}, "pairs": [["a", "b"]]})

    def test_unsupported_default(self):
        with pytest.raises(SerializationError):
            hio.from_dict({"nodes": {"a": 1.0}, "pairs": [], "default_pair_delay": "huge"})
