"""Unit tests for PhysicalEnvironment."""

import math

import pytest

from repro.exceptions import EnvironmentError_
from repro.hardware.environment import PhysicalEnvironment


@pytest.fixture
def triangle():
    return PhysicalEnvironment(
        {"x": 1.0, "y": 2.0, "z": 3.0},
        {("x", "y"): 10.0, ("y", "z"): 20.0},
        default_pair_delay=100.0,
        name="triangle",
    )


class TestConstruction:
    def test_empty_environment_rejected(self):
        with pytest.raises(EnvironmentError_):
            PhysicalEnvironment({}, {})

    def test_pair_referencing_unknown_node_rejected(self):
        with pytest.raises(EnvironmentError_):
            PhysicalEnvironment({"a": 1.0}, {("a", "b"): 5.0})

    def test_self_pair_rejected(self):
        with pytest.raises(EnvironmentError_):
            PhysicalEnvironment({"a": 1.0, "b": 1.0}, {("a", "a"): 5.0})

    def test_duplicate_pair_rejected(self):
        with pytest.raises(EnvironmentError_):
            PhysicalEnvironment(
                {"a": 1.0, "b": 1.0}, {("a", "b"): 5.0, ("b", "a"): 6.0}
            )

    def test_negative_delay_rejected(self):
        with pytest.raises(EnvironmentError_):
            PhysicalEnvironment({"a": -1.0}, {})
        with pytest.raises(EnvironmentError_):
            PhysicalEnvironment({"a": 1.0, "b": 1.0}, {("a", "b"): -5.0})

    def test_negative_default_rejected(self):
        with pytest.raises(EnvironmentError_):
            PhysicalEnvironment({"a": 1.0}, {}, default_pair_delay=-1.0)


class TestQueries:
    def test_nodes_and_membership(self, triangle):
        assert triangle.nodes == ("x", "y", "z")
        assert triangle.num_qubits == 3
        assert "x" in triangle
        assert "w" not in triangle

    def test_single_qubit_delay(self, triangle):
        assert triangle.single_qubit_delay("y") == 2.0

    def test_single_qubit_delay_unknown_node(self, triangle):
        with pytest.raises(EnvironmentError_):
            triangle.single_qubit_delay("nope")

    def test_pair_delay_symmetric(self, triangle):
        assert triangle.pair_delay("x", "y") == triangle.pair_delay("y", "x") == 10.0

    def test_pair_delay_default(self, triangle):
        assert triangle.pair_delay("x", "z") == 100.0

    def test_pair_delay_same_node_is_single_qubit_delay(self, triangle):
        assert triangle.pair_delay("z", "z") == 3.0

    def test_weight_alias(self, triangle):
        assert triangle.weight("x", "y") == triangle.pair_delay("x", "y")

    def test_finite_pairs_includes_defaults(self, triangle):
        pairs = triangle.finite_pairs()
        assert len(pairs) == 3

    def test_infinite_default_excluded_from_finite_pairs(self):
        env = PhysicalEnvironment({"a": 1.0, "b": 1.0, "c": 1.0}, {("a", "b"): 2.0})
        assert len(env.finite_pairs()) == 1

    def test_delay_values_sorted_unique(self, triangle):
        assert triangle.delay_values() == [10.0, 20.0, 100.0]

    def test_search_space_size(self, triangle):
        assert triangle.search_space_size(3) == 6
        assert triangle.search_space_size(2) == 6
        assert triangle.search_space_size(4) == 0

    def test_seconds_conversion(self, triangle):
        assert triangle.seconds(136) == pytest.approx(0.0136)


class TestGraphs:
    def test_adjacency_graph_filters_by_threshold(self, triangle):
        graph = triangle.adjacency_graph(15.0)
        assert graph.has_edge("x", "y")
        assert not graph.has_edge("y", "z")
        assert graph.number_of_nodes() == 3

    def test_adjacency_graph_keeps_delay_attribute(self, triangle):
        graph = triangle.adjacency_graph(1000.0)
        assert graph["x"]["y"]["delay"] == 10.0

    def test_is_connected_at(self, triangle):
        assert not triangle.is_connected_at(15.0)
        assert triangle.is_connected_at(25.0)

    def test_minimal_connecting_threshold(self, triangle):
        assert triangle.minimal_connecting_threshold() == 20.0

    def test_minimal_connecting_threshold_disconnected_raises(self):
        env = PhysicalEnvironment(
            {"a": 1.0, "b": 1.0, "c": 1.0},
            {("a", "b"): 2.0},
            default_pair_delay=math.inf,
        )
        with pytest.raises(EnvironmentError_):
            env.minimal_connecting_threshold()

    def test_to_networkx_excludes_infinite_by_default(self):
        env = PhysicalEnvironment(
            {"a": 1.0, "b": 1.0, "c": 1.0},
            {("a", "b"): 2.0},
            default_pair_delay=math.inf,
        )
        assert env.to_networkx().number_of_edges() == 1
        assert env.to_networkx(include_infinite=True).number_of_edges() == 3


class TestTransformations:
    def test_restricted_to(self, triangle):
        sub = triangle.restricted_to(["x", "y"])
        assert sub.num_qubits == 2
        assert sub.pair_delay("x", "y") == 10.0

    def test_restricted_to_empty_rejected(self, triangle):
        with pytest.raises(EnvironmentError_):
            triangle.restricted_to([])

    def test_restricted_to_is_subset_in_parent_order(self, triangle):
        # The restriction keeps the parent's node order, ignores unknown
        # nodes, and accepts a one-shot iterable (the membership set is
        # built once, not per node).
        sub = triangle.restricted_to(iter(["y", "ghost", "x"]))
        assert list(sub.nodes) == ["x", "y"]
        assert set(sub.nodes) <= set(triangle.nodes)
        assert sub.pair_delay("x", "y") == triangle.pair_delay("x", "y")
        assert sub.default_pair_delay == triangle.default_pair_delay

    def test_restricted_to_full_set_preserves_everything(self, triangle):
        sub = triangle.restricted_to(list(triangle.nodes))
        assert list(sub.nodes) == list(triangle.nodes)
        assert sub.pair_delay("y", "z") == triangle.pair_delay("y", "z")

    def test_scaled(self, triangle):
        scaled = triangle.scaled(2.0)
        assert scaled.pair_delay("x", "y") == 20.0
        assert scaled.single_qubit_delay("x") == 2.0
        assert scaled.default_pair_delay == 200.0

    def test_scaled_rejects_nonpositive_factor(self, triangle):
        with pytest.raises(EnvironmentError_):
            triangle.scaled(0.0)

    def test_scaled_keeps_infinite_default(self):
        env = PhysicalEnvironment({"a": 1.0, "b": 1.0}, {}, default_pair_delay=math.inf)
        assert math.isinf(env.scaled(3.0).default_pair_delay)
