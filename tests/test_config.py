"""Tests of the typed run configuration (:mod:`repro.config`)."""

import dataclasses
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import (
    CONFIG_FORMAT,
    CONFIG_SCHEMA_VERSION,
    OUTPUT_FORMATS,
    RunConfig,
)
from repro.core.config import PlacementOptions
from repro.exceptions import ConfigError, ReproError


# ---------------------------------------------------------------------------
# Hypothesis strategies
# ---------------------------------------------------------------------------

_options_strategy = st.builds(
    PlacementOptions,
    threshold=st.one_of(st.none(), st.floats(min_value=1.0, max_value=1e4)),
    max_monomorphisms=st.integers(min_value=1, max_value=500),
    fine_tuning=st.booleans(),
    fine_tuning_max_rounds=st.integers(min_value=0, max_value=20),
    lookahead=st.booleans(),
    lookahead_width=st.integers(min_value=1, max_value=16),
    leaf_override=st.booleans(),
    apply_interaction_cap=st.booleans(),
    sequential_levels=st.booleans(),
    restrict_to_largest_component=st.booleans(),
    reorder_commuting_gates=st.booleans(),
    max_workspace_two_qubit_gates=st.one_of(
        st.none(), st.integers(min_value=1, max_value=50)
    ),
    scheduler_backend=st.sampled_from(["auto", "python", "numpy"]),
    placer=st.sampled_from(
        ["exact", "greedy", "anneal", "anneal:7", "anneal:3x500"]
    ),
)


@st.composite
def _config_strategy(draw):
    shards = draw(st.integers(min_value=1, max_value=8))
    shard_index = draw(
        st.one_of(st.none(), st.integers(min_value=0, max_value=shards - 1))
    )
    return RunConfig(
        circuit=draw(st.sampled_from(["qft6", "qft:7", "hidden-stage:8x3",
                                      "phaseest", "circuits/some.qc"])),
        environment=draw(st.sampled_from(["histidine", "chain:12", "grid:4x4",
                                          "acetyl-chloride", "env.json"])),
        thresholds=draw(st.one_of(
            st.none(),
            st.lists(st.floats(min_value=0.5, max_value=1e4),
                     min_size=1, max_size=6).map(tuple),
        )),
        options=draw(_options_strategy),
        jobs=draw(st.integers(min_value=1, max_value=16)),
        retries=draw(st.integers(min_value=0, max_value=5)),
        cell_timeout=draw(st.one_of(
            st.none(), st.floats(min_value=0.5, max_value=3600.0),
        )),
        shards=shards,
        shard_index=shard_index,
        strategy=draw(st.sampled_from(["round-robin", "cost-balanced",
                                       "round_robin", "cost_balanced"])),
        output=draw(st.sampled_from(OUTPUT_FORMATS)),
    )


class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(config=_config_strategy())
    def test_json_round_trip_is_identity(self, config):
        clone = RunConfig.from_json(config.to_json())
        assert clone == config

    @settings(max_examples=30, deadline=None)
    @given(config=_config_strategy())
    def test_canonical_json_is_stable(self, config):
        # Canonical encoding: a round-tripped config re-encodes to the
        # exact same bytes (the file-level determinism contract).
        text = config.to_json()
        assert RunConfig.from_json(text).to_json() == text

    @settings(max_examples=30, deadline=None)
    @given(config=_config_strategy())
    def test_dict_round_trip_survives_json_types(self, config):
        # Through json.loads/dumps, tuples become lists etc.; from_dict
        # must still rebuild an equal config.
        data = json.loads(json.dumps(config.to_dict()))
        assert RunConfig.from_dict(data) == config

    def test_file_round_trip(self, tmp_path):
        config = RunConfig(circuit="qft:5", environment="chain:5",
                           thresholds=(10, 20), jobs=2)
        path = tmp_path / "run.json"
        config.save(str(path))
        assert RunConfig.load(str(path)) == config

    def test_to_dict_is_self_describing(self):
        data = RunConfig(circuit="qft6", environment="histidine").to_dict()
        assert data["format"] == CONFIG_FORMAT
        assert data["schema_version"] == CONFIG_SCHEMA_VERSION


class TestValidation:
    def test_strategy_normalised(self):
        config = RunConfig(circuit="qft6", environment="histidine",
                           strategy="cost_balanced")
        assert config.strategy == "cost-balanced"

    def test_thresholds_coerced_to_float_tuple(self):
        config = RunConfig(circuit="qft6", environment="histidine",
                           thresholds=[50, 100])
        assert config.thresholds == (50.0, 100.0)

    def test_cell_timeout_coerced_to_float(self):
        config = RunConfig(circuit="qft6", environment="histidine",
                           retries=2, cell_timeout=30)
        assert config.retries == 2
        assert isinstance(config.cell_timeout, float)
        assert config.cell_timeout == 30.0

    @pytest.mark.parametrize("changes,match", [
        (dict(circuit=""), "circuit"),
        (dict(environment=""), "environment"),
        (dict(thresholds=()), "empty"),
        (dict(thresholds=(0.0,)), "positive"),
        (dict(thresholds="abc"), "numbers"),
        (dict(jobs=0), "jobs"),
        (dict(retries=-1), "retries"),
        (dict(retries=1.5), "retries"),
        (dict(retries=True), "retries"),
        (dict(cell_timeout=0), "cell_timeout"),
        (dict(cell_timeout=-3.0), "cell_timeout"),
        (dict(cell_timeout=True), "cell_timeout"),
        (dict(shards=0), "shards"),
        (dict(shard_index=-1), "out of range"),
        (dict(shards=2, shard_index=2), "out of range"),
        (dict(strategy="zigzag"), "strategy"),
        (dict(output="yaml"), "output"),
        (dict(options="nope"), "PlacementOptions"),
    ])
    def test_invalid_values_rejected(self, changes, match):
        base = dict(circuit="qft6", environment="histidine")
        base.update(changes)
        with pytest.raises(ConfigError, match=match):
            RunConfig(**base)

    def test_config_error_is_repro_error(self):
        assert issubclass(ConfigError, ReproError)

    def test_replace_revalidates(self):
        config = RunConfig(circuit="qft6", environment="histidine")
        assert config.replace(jobs=3).jobs == 3
        with pytest.raises(ConfigError):
            config.replace(jobs=-1)


class TestFromDict:
    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigError, match="jbos"):
            RunConfig.from_dict({"circuit": "qft6", "environment": "histidine",
                                 "jbos": 4})

    def test_unknown_option_keys_rejected(self):
        with pytest.raises(ConfigError, match="fine_tunning"):
            RunConfig.from_dict({
                "circuit": "qft6", "environment": "histidine",
                "options": {"fine_tunning": False},
            })

    def test_wrong_format_tag_rejected(self):
        with pytest.raises(ConfigError, match="format"):
            RunConfig.from_dict({"format": "not-a-config",
                                 "circuit": "qft6",
                                 "environment": "histidine"})

    def test_invalid_json_rejected(self):
        with pytest.raises(ConfigError, match="JSON"):
            RunConfig.from_json("{not json")

    def test_missing_file_is_config_error(self, tmp_path):
        with pytest.raises(ConfigError, match="cannot read"):
            RunConfig.load(str(tmp_path / "absent.json"))

    def test_minimal_dict_uses_defaults(self):
        config = RunConfig.from_dict({"circuit": "qft6",
                                      "environment": "histidine"})
        assert config.options == PlacementOptions()
        assert config.jobs == 1
        assert config.output == "text"

    def test_all_fields_covered_by_to_dict(self):
        # Guards against adding a RunConfig field and forgetting the
        # serialisation: every dataclass field must appear in to_dict.
        data = RunConfig(circuit="qft6", environment="histidine").to_dict()
        for field in dataclasses.fields(RunConfig):
            assert field.name in data
