"""Property-based tests (hypothesis) for the core data structures and invariants."""

import networkx as nx
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.circuits import gates as g
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.levelize import levelize
from repro.core.monomorphism import (
    find_monomorphisms,
    has_monomorphism,
    verify_monomorphism,
)
from repro.hardware.architectures import linear_chain
from repro.routing.bubble import route_permutation
from repro.routing.permutation import Permutation
from repro.routing.separators import balanced_connected_bisection, separability
from repro.routing.token_swapping import route_permutation_greedy
from repro.simulation.verify import verify_routing_layers
from repro.timing.gate_times import cap_interaction_runs
from repro.timing.scheduler import circuit_runtime, sequential_level_runtime

RELAXED = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------


@st.composite
def connected_graphs(draw, min_nodes=3, max_nodes=10):
    """Random connected graphs: a random tree plus a few extra edges."""
    num_nodes = draw(st.integers(min_nodes, max_nodes))
    seed = draw(st.integers(0, 10_000))
    rng = nx.utils.create_random_state(seed)
    prufer = [rng.randint(0, num_nodes) for _ in range(max(0, num_nodes - 2))]
    graph = nx.from_prufer_sequence(prufer) if num_nodes > 2 else nx.path_graph(num_nodes)
    extra = draw(st.integers(0, 3))
    nodes = list(graph.nodes())
    for _ in range(extra):
        a, b = rng.choice(len(nodes)), rng.choice(len(nodes))
        if a != b:
            graph.add_edge(nodes[a], nodes[b])
    return graph


@st.composite
def graph_with_permutation(draw):
    graph = draw(connected_graphs())
    nodes = sorted(graph.nodes())
    shuffled = draw(st.permutations(nodes))
    return graph, dict(zip(nodes, shuffled))


@st.composite
def random_circuits(draw, max_qubits=6, max_gates=20):
    num_qubits = draw(st.integers(2, max_qubits))
    num_gates = draw(st.integers(0, max_gates))
    qubits = list(range(num_qubits))
    gates = []
    for _ in range(num_gates):
        if draw(st.booleans()):
            gates.append(g.ry(draw(st.sampled_from(qubits)), 90.0))
        else:
            a = draw(st.sampled_from(qubits))
            b = draw(st.sampled_from([q for q in qubits if q != a]))
            gates.append(g.generic_2q(a, b, draw(st.sampled_from([1.0, 2.0, 3.0]))))
    return QuantumCircuit(qubits, gates)


# ---------------------------------------------------------------------------
# Routing invariants
# ---------------------------------------------------------------------------


class TestRoutingProperties:
    @RELAXED
    @given(graph_with_permutation())
    def test_bubble_router_always_delivers(self, data):
        graph, permutation = data
        result = route_permutation(graph, permutation)
        assert verify_routing_layers(result.layers, permutation)

    @RELAXED
    @given(graph_with_permutation())
    def test_bubble_router_layers_are_valid(self, data):
        graph, permutation = data
        result = route_permutation(graph, permutation)
        for layer in result.layers:
            used = set()
            for a, b in layer:
                assert graph.has_edge(a, b)
                assert a not in used and b not in used
                used.update((a, b))

    @RELAXED
    @given(graph_with_permutation())
    def test_bubble_router_depth_is_linear(self, data):
        """The paper's 8n + const bound (with a generous constant)."""
        graph, permutation = data
        result = route_permutation(graph, permutation)
        assert result.depth <= 8 * graph.number_of_nodes() + 8

    @RELAXED
    @given(graph_with_permutation())
    def test_greedy_router_always_delivers(self, data):
        graph, permutation = data
        result = route_permutation_greedy(graph, permutation)
        assert verify_routing_layers(result.layers, permutation)

    @RELAXED
    @given(connected_graphs())
    def test_identity_permutation_needs_no_swaps(self, graph):
        result = route_permutation(graph, Permutation.identity(graph.nodes()))
        assert result.num_swaps == 0


class TestSeparatorProperties:
    @RELAXED
    @given(connected_graphs(min_nodes=2))
    def test_bisection_is_valid(self, graph):
        bisection = balanced_connected_bisection(graph)
        part_one, part_two = set(bisection.part_one), set(bisection.part_two)
        assert part_one | part_two == set(graph.nodes())
        assert not part_one & part_two
        assert nx.is_connected(graph.subgraph(part_one))
        assert nx.is_connected(graph.subgraph(part_two))
        assert bisection.channel_edges

    @RELAXED
    @given(connected_graphs())
    def test_separability_is_a_valid_ratio(self, graph):
        value = separability(graph)
        assert 0 < value <= 1


# ---------------------------------------------------------------------------
# Permutation algebra
# ---------------------------------------------------------------------------


class TestPermutationProperties:
    @RELAXED
    @given(st.permutations(list(range(8))))
    def test_inverse_composes_to_identity(self, targets):
        perm = Permutation(dict(zip(range(8), targets)))
        assert perm.compose(perm.inverse()).is_identity()
        assert perm.inverse().compose(perm).is_identity()

    @RELAXED
    @given(st.permutations(list(range(7))))
    def test_cycles_partition_displaced_nodes(self, targets):
        perm = Permutation(dict(zip(range(7), targets)))
        cycle_nodes = [node for cycle in perm.cycles() for node in cycle]
        assert sorted(cycle_nodes) == sorted(perm.displaced_nodes())
        assert len(set(cycle_nodes)) == len(cycle_nodes)


# ---------------------------------------------------------------------------
# Scheduling invariants
# ---------------------------------------------------------------------------


class TestSchedulingProperties:
    @RELAXED
    @given(random_circuits())
    def test_runtime_non_negative_and_bounded_by_total_work(self, circuit):
        env = linear_chain(circuit.num_qubits, slow_pair_delay=50.0)
        placement = dict(zip(circuit.qubits, env.nodes))
        runtime = circuit_runtime(circuit, placement, env)
        total_work = sum(
            gate.duration * 50.0 if gate.is_two_qubit else gate.duration * 1.0
            for gate in circuit
        )
        assert 0 <= runtime <= total_work + 1e-9

    @RELAXED
    @given(random_circuits())
    def test_sequential_model_never_faster(self, circuit):
        env = linear_chain(circuit.num_qubits, slow_pair_delay=50.0)
        placement = dict(zip(circuit.qubits, env.nodes))
        asynchronous = circuit_runtime(circuit, placement, env)
        sequential = sequential_level_runtime(circuit, placement, env)
        assert sequential >= asynchronous - 1e-9

    @RELAXED
    @given(random_circuits())
    def test_appending_a_gate_never_reduces_runtime(self, circuit):
        env = linear_chain(circuit.num_qubits, slow_pair_delay=50.0)
        placement = dict(zip(circuit.qubits, env.nodes))
        before = circuit_runtime(circuit, placement, env)
        extended = circuit.copy()
        extended.append(g.ry(circuit.qubits[0], 90.0))
        after = circuit_runtime(extended, placement, env)
        assert after >= before

    @RELAXED
    @given(random_circuits())
    def test_interaction_cap_never_increases_duration(self, circuit):
        capped = cap_interaction_runs(circuit.gates)
        assert sum(gate.duration for gate in capped) <= circuit.total_duration() + 1e-9

    @RELAXED
    @given(random_circuits())
    def test_levelize_preserves_gates_and_disjointness(self, circuit):
        levels = levelize(circuit)
        flattened = [gate for level in levels for gate in level]
        assert len(flattened) == circuit.num_gates
        for level in levels:
            used = set()
            for gate in level:
                assert not used.intersection(gate.qubits)
                used.update(gate.qubits)


# ---------------------------------------------------------------------------
# Monomorphism invariants
# ---------------------------------------------------------------------------


class TestMonomorphismProperties:
    @RELAXED
    @given(connected_graphs(min_nodes=4, max_nodes=9), st.integers(2, 4))
    def test_subgraphs_always_embed(self, graph, pattern_size):
        nodes = sorted(graph.nodes())[:pattern_size]
        pattern = graph.subgraph(nodes).copy()
        pattern = nx.relabel_nodes(pattern, {n: f"p{n}" for n in pattern.nodes()})
        pattern.remove_nodes_from(list(nx.isolates(pattern)))
        if pattern.number_of_edges() == 0:
            return
        assert has_monomorphism(pattern, graph)

    @RELAXED
    @given(connected_graphs(min_nodes=4, max_nodes=9))
    def test_found_mappings_are_valid(self, graph):
        pattern = nx.path_graph(3)
        for mapping in find_monomorphisms(pattern, graph, max_count=10):
            assert verify_monomorphism(pattern, graph, mapping)
