"""Tests of the fault-tolerance layer (``repro.analysis.resilience``)."""

import json
import subprocess
import sys

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import resilience
from repro.analysis.resilience import (
    CELLS_FAILED,
    CELLS_RETRIED,
    CELLS_TIMED_OUT,
    FailedOutcome,
    FaultInjector,
    RetryPolicy,
    clear_fault_injector,
    execute_cells,
    install_fault_injector,
)
from repro.analysis.runner import (
    ExperimentRunner,
    ExperimentSpec,
    molecule_factory,
)
from repro.analysis.serialization import (
    deterministic_rows,
    outcome_from_dict,
    outcome_to_dict,
)
from repro.circuits.library import phaseest, qec3_encoder
from repro.core.stats import STATS, Counters
from repro.exceptions import ExperimentError


@pytest.fixture(autouse=True)
def _no_leftover_injector():
    yield
    clear_fault_injector()


def _small_grid():
    """Four cells, the last one infeasible (phaseest needs 6 spins)."""
    return [
        ExperimentSpec(
            circuit_factory=qec3_encoder,
            environment_factory=molecule_factory("acetyl-chloride"),
            threshold=threshold,
            label=f"qec3 thr {threshold:g}",
        )
        for threshold in (50.0, 100.0, 200.0)
    ] + [
        ExperimentSpec(
            circuit_factory=phaseest,
            environment_factory=molecule_factory("acetyl-chloride"),
            threshold=200.0,
            label="phaseest",
        )
    ]


def _serial_rows(specs):
    outcomes = list(ExperimentRunner(jobs=1).iter_outcomes(specs))
    return deterministic_rows(sorted(outcomes, key=lambda o: o.index))


def _resilient_rows(specs, **kwargs):
    outcomes = list(execute_cells(specs, **kwargs))
    return deterministic_rows(sorted(outcomes, key=lambda o: o.index))


class TestRetryPolicy:
    def test_defaults_are_noop(self):
        assert RetryPolicy().is_noop
        assert not RetryPolicy(max_attempts=2).is_noop
        assert not RetryPolicy(cell_timeout=5.0).is_noop

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(max_attempts=0),
            dict(max_attempts=1.5),
            dict(backoff=-0.1),
            dict(backoff_factor=0.5),
            dict(jitter=-0.1),
            dict(jitter=1.5),
            dict(cell_timeout=0.0),
            dict(cell_timeout=-2.0),
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ExperimentError):
            RetryPolicy(**kwargs)

    def test_delay_rejects_zero_based_attempts(self):
        with pytest.raises(ExperimentError, match="1-based"):
            RetryPolicy(max_attempts=3).delay(0, 0)

    def test_schedule_is_deterministic_and_exponential(self):
        policy = RetryPolicy(max_attempts=4, backoff=0.05, jitter=0.1)
        schedule = policy.schedule(7)
        assert schedule == policy.schedule(7)
        assert len(schedule) == 3
        # Exponential growth dominates the +-10% jitter band.
        assert schedule[0] < schedule[1] < schedule[2]
        for attempt, delay in enumerate(schedule, start=1):
            base = 0.05 * 2.0 ** (attempt - 1)
            assert base <= delay <= base * 1.1

    def test_distinct_cells_decorrelate(self):
        policy = RetryPolicy(max_attempts=2, jitter=1.0)
        delays = {policy.delay(cell, 1) for cell in range(32)}
        assert len(delays) == 32

    def test_schedule_is_hashseed_independent(self):
        """The backoff schedule survives PYTHONHASHSEED changes byte-for-byte."""
        program = (
            "from repro.analysis.resilience import RetryPolicy;"
            "import json;"
            "p = RetryPolicy(max_attempts=4, backoff=0.05, jitter=0.25);"
            "print(json.dumps([p.schedule(i) for i in range(6)]))"
        )
        outputs = set()
        for seed in ("0", "1", "12345"):
            result = subprocess.run(
                [sys.executable, "-c", program],
                capture_output=True,
                text=True,
                env={"PYTHONHASHSEED": seed, "PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
                cwd=None,
                check=True,
            )
            outputs.add(result.stdout)
        assert len(outputs) == 1


class TestFaultInjector:
    def test_from_spec_round_trip(self):
        injector = FaultInjector.from_spec("2:kill; 5:raise,raise ;out:1; out:3")
        assert injector.cell_faults == {2: ("kill",), 5: ("raise", "raise")}
        assert injector.corrupt_outputs == (1, 3)
        assert injector.fault_for(5, 1) == "raise"
        assert injector.fault_for(5, 2) == "raise"
        assert injector.fault_for(5, 3) is None
        assert injector.fault_for(0, 1) is None
        assert injector.corrupts_output(3)
        assert not injector.corrupts_output(0)

    def test_empty_spec_means_no_faults(self):
        injector = FaultInjector.from_spec("  ;; ")
        assert injector.cell_faults == {}
        assert injector.corrupt_outputs == ()

    @pytest.mark.parametrize("spec", ["2:explode", "x:kill", "out:one", "3:"])
    def test_malformed_specs_rejected(self, spec):
        with pytest.raises(ExperimentError):
            FaultInjector.from_spec(spec)

    def test_env_var_activation(self, monkeypatch):
        monkeypatch.delenv(resilience.FAULT_PLAN_ENV_VAR, raising=False)
        assert resilience.active_fault_injector() is None
        monkeypatch.setenv(resilience.FAULT_PLAN_ENV_VAR, "1:raise")
        assert resilience.active_fault_injector().fault_for(1, 1) == "raise"
        installed = FaultInjector(cell_faults={9: ("kill",)})
        install_fault_injector(installed)
        assert resilience.active_fault_injector() is installed
        clear_fault_injector()
        assert resilience.active_fault_injector().fault_for(1, 1) == "raise"


class TestRecovery:
    def test_fault_free_resilient_run_matches_serial(self):
        specs = _small_grid()
        assert _resilient_rows(
            specs, policy=RetryPolicy(max_attempts=2)
        ) == _serial_rows(specs)

    @pytest.mark.parametrize("action", ["raise", "kill"])
    def test_transient_fault_recovers_to_serial_rows(self, action):
        specs = _small_grid()
        injector = FaultInjector(cell_faults={1: (action,)})
        before = STATS.snapshot()
        rows = _resilient_rows(
            specs, policy=RetryPolicy(max_attempts=2, backoff=0.0), injector=injector
        )
        delta = STATS.delta_since(before)
        assert rows == _serial_rows(specs)
        assert delta.get(CELLS_RETRIED) == 1
        assert CELLS_FAILED not in delta

    def test_hang_is_killed_and_retried(self):
        specs = _small_grid()[:2]
        injector = FaultInjector(cell_faults={0: ("hang",)})
        before = STATS.snapshot()
        rows = _resilient_rows(
            specs,
            policy=RetryPolicy(max_attempts=2, backoff=0.0, cell_timeout=1.0),
            injector=injector,
        )
        delta = STATS.delta_since(before)
        assert rows == _serial_rows(specs)
        assert delta.get(CELLS_TIMED_OUT) == 1
        assert delta.get(CELLS_RETRIED) == 1

    def test_exhausted_retries_become_failed_outcome(self):
        specs = _small_grid()[:2]
        injector = FaultInjector(cell_faults={1: ("raise", "raise")})
        before = STATS.snapshot()
        outcomes = sorted(
            execute_cells(
                specs,
                policy=RetryPolicy(max_attempts=2, backoff=0.0),
                injector=injector,
            ),
            key=lambda o: o.index,
        )
        delta = STATS.delta_since(before)
        assert delta.get(CELLS_FAILED) == 1
        failed = outcomes[1]
        assert isinstance(failed, FailedOutcome)
        assert not failed.feasible
        assert failed.attempts == 2
        assert failed.failure == "error"
        assert failed.error_type == "InjectedFaultError"
        assert "injected fault" in failed.error
        # The healthy cell is untouched by its neighbour's failure.
        assert deterministic_rows(outcomes[:1]) == _serial_rows(specs[:1])

    def test_crash_without_retries_reports_exit_code(self):
        specs = _small_grid()[:1]
        injector = FaultInjector(cell_faults={0: ("kill",)})
        [outcome] = list(execute_cells(specs, injector=injector))
        assert isinstance(outcome, FailedOutcome)
        assert outcome.failure == "crash"
        assert outcome.error_type == "WorkerCrash"
        assert "exit code 17" in outcome.error

    def test_infeasible_cell_is_not_a_fault(self):
        """ThresholdError "N/A" cells pass through without consuming retries."""
        specs = [_small_grid()[3]]
        before = STATS.snapshot()
        [outcome] = list(
            execute_cells(specs, policy=RetryPolicy(max_attempts=3, backoff=0.0))
        )
        delta = STATS.delta_since(before)
        assert not outcome.feasible
        assert not isinstance(outcome, FailedOutcome)
        assert CELLS_RETRIED not in delta
        assert CELLS_FAILED not in delta

    def test_failed_outcome_round_trips_through_json(self):
        failed = FailedOutcome(
            index=3,
            label="qec3 thr 50",
            feasible=False,
            runtime_seconds=None,
            num_subcircuits=None,
            error="injected fault (cell 3)",
            error_type="InjectedFaultError",
            counters={"monomorphism.searches": 2},
            attempts=2,
            failure="error",
        )
        data = json.loads(json.dumps(outcome_to_dict(failed)))
        clone = outcome_from_dict(data)
        assert isinstance(clone, FailedOutcome)
        assert clone == failed

    def test_results_independent_of_jobs(self):
        specs = _small_grid()
        injector = FaultInjector(cell_faults={0: ("raise",), 2: ("kill",)})
        policy = RetryPolicy(max_attempts=3, backoff=0.0)
        rows = {
            jobs: _resilient_rows(specs, policy=policy, injector=injector, jobs=jobs)
            for jobs in (1, 2, 4)
        }
        assert rows[1] == rows[2] == rows[4] == _serial_rows(specs)

    def test_runner_routes_through_resilient_path(self):
        specs = _small_grid()[:2]
        injector = FaultInjector(cell_faults={1: ("raise",)})
        install_fault_injector(injector)
        try:
            runner = ExperimentRunner(
                jobs=1, retry_policy=RetryPolicy(max_attempts=2, backoff=0.0)
            )
            outcomes = sorted(runner.iter_outcomes(specs), key=lambda o: o.index)
        finally:
            clear_fault_injector()
        assert deterministic_rows(outcomes) == _serial_rows(specs)

    def test_runner_rejects_non_policy(self):
        with pytest.raises(ExperimentError, match="retry_policy"):
            ExperimentRunner(retry_policy=object())


class TestCountersMergePartition:
    """Counters.merge over any partition of the work equals the serial total."""

    @given(
        deltas=st.lists(
            st.dictionaries(
                st.sampled_from(
                    ["monomorphism.searches", "scheduler.full_evals", CELLS_RETRIED]
                ),
                st.integers(min_value=0, max_value=1_000),
                max_size=3,
            ),
            max_size=8,
        ),
        cut_points=st.lists(st.integers(min_value=0, max_value=8), max_size=4),
    )
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_any_partition_matches_serial(self, deltas, cut_points):
        serial = Counters()
        for delta in deltas:
            serial.merge(delta)

        bounds = sorted({0, len(deltas), *[min(c, len(deltas)) for c in cut_points]})
        merged = Counters()
        for start, stop in zip(bounds, bounds[1:]):
            shard = Counters()  # empty shards (start == stop) merge as no-ops
            for delta in deltas[start:stop]:
                shard.merge(delta)
            merged.merge(shard.snapshot())
        assert merged.snapshot() == serial.snapshot()

    def test_failed_outcome_counters_participate_in_merge(self):
        """Work done by failed attempts is preserved and merged like any cell."""
        failed = FailedOutcome(
            index=0, label="x", feasible=False, runtime_seconds=None,
            num_subcircuits=None, counters={"scheduler.full_evals": 7},
            attempts=2, failure="error",
        )
        total = Counters()
        total.merge(failed.counters)
        total.merge({"scheduler.full_evals": 3})
        assert total.get("scheduler.full_evals") == 10
