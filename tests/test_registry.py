"""Tests of the named-registry subsystem (:mod:`repro.registry`)."""

import pickle
from functools import partial

import pytest

from repro.exceptions import RegistryError, ReproError, UnknownSpecError
from repro.registry import (
    CIRCUITS,
    ENVIRONMENTS,
    SCHEDULER_BACKENDS,
    SHARD_STRATEGIES,
    Registry,
    as_circuit_factory,
    as_environment_factory,
    load_circuit,
    load_environment,
    parse_spec,
)


class TestParseSpec:
    def test_plain_name(self):
        assert parse_spec("qft6") == ("qft6", ())

    def test_single_parameter(self):
        assert parse_spec("qft:7") == ("qft", (7,))

    def test_multiple_parameters(self):
        assert parse_spec("grid:4x5") == ("grid", (4, 5))

    def test_names_may_contain_slashes_and_dots(self):
        assert parse_spec("steane-x/z1") == ("steane-x/z1", ())

    @pytest.mark.parametrize("bad", ["", ":7", "qft:", "qft:x", "qft:3.5",
                                     "grid:4x", "chain:-2", "a:1,", "a:,2",
                                     "a:1,,3", "a:1,-2"])
    def test_malformed_specs_rejected(self, bad):
        with pytest.raises(UnknownSpecError):
            parse_spec(bad)

    def test_comma_lists_parse_to_tuples(self):
        assert parse_spec("anneal:1,2,3") == ("anneal", ((1, 2, 3),))
        assert parse_spec("anneal:1,2x500") == ("anneal", ((1, 2), 500))

    def test_zero_parameter_allowed(self):
        # Zero is a legitimate parameter value (e.g. an explicit seed 0);
        # the hidden-stage family's default seed must be expressible.
        assert parse_spec("hidden-stage:8x0") == ("hidden-stage", (8, 0))
        assert (CIRCUITS.build("hidden-stage:8x0").gates
                == CIRCUITS.build("hidden-stage:8").gates)


class TestRegistry:
    def test_duplicate_name_rejected(self):
        registry = Registry("thing")
        registry.add("a", lambda: 1)
        with pytest.raises(RegistryError, match="already registered"):
            registry.add("a", lambda: 2)
        # Explicit overwrite replaces the entry.
        registry.add("a", lambda: 3, overwrite=True)
        assert registry.build("a") == 3

    def test_invalid_names_rejected(self):
        registry = Registry("thing")
        for bad in ("", "has space", "has:colon", ":x"):
            with pytest.raises(RegistryError):
                registry.add(bad, lambda: 1)

    def test_non_callable_factory_rejected(self):
        with pytest.raises(RegistryError, match="not callable"):
            Registry("thing").add("a", 42)

    def test_unknown_spec_lists_valid_names(self):
        registry = Registry("thing")
        registry.add("alpha", lambda: 1)
        registry.add("beta", lambda n: n, min_params=1)
        with pytest.raises(UnknownSpecError) as excinfo:
            registry.build("gamma")
        message = str(excinfo.value)
        assert "alpha" in message
        assert "beta:N" in message
        assert "\n" not in message

    def test_parameter_arity_enforced(self):
        registry = Registry("thing")
        registry.add("plain", lambda: 0)
        registry.add("fam", lambda a, b=9: (a, b), min_params=1, max_params=2)
        assert registry.build("fam:3") == (3, 9)
        assert registry.build("fam:3x4") == (3, 4)
        with pytest.raises(UnknownSpecError, match="takes no parameters"):
            registry.build("plain:5")
        with pytest.raises(UnknownSpecError, match="parameter"):
            registry.build("fam")
        with pytest.raises(UnknownSpecError, match="parameter"):
            registry.build("fam:1x2x3")

    def test_list_params_gate_comma_lists(self):
        registry = Registry("thing")
        registry.add("fam", lambda a, b=1: (a, b), min_params=1, max_params=2,
                     list_params=(0,))
        assert registry.build("fam:1,2,3") == ((1, 2, 3), 1)
        assert registry.build("fam:1,2x7") == ((1, 2), 7)
        with pytest.raises(UnknownSpecError,
                           match="does not accept a comma-separated list"):
            registry.build("fam:1x2,3")
        registry.add("plainer", lambda a: a, min_params=1)
        with pytest.raises(UnknownSpecError,
                           match="does not accept a comma-separated list"):
            registry.build("plainer:1,2")

    def test_list_params_positions_bounds_checked(self):
        registry = Registry("thing")
        with pytest.raises(RegistryError, match="list_params"):
            registry.add("fam", lambda a: a, min_params=1, max_params=1,
                         list_params=(1,))

    def test_decorator_registration(self):
        registry = Registry("thing")

        @registry.register("doubler", min_params=1)
        def doubler(n):
            return 2 * n

        assert registry.build("doubler:21") == 42
        assert "doubler" in registry


class TestBuiltinRegistries:
    def test_named_circuits_match_factories(self):
        from repro.circuits.library import CIRCUIT_FACTORIES

        for name in CIRCUIT_FACTORIES:
            assert name in CIRCUITS
            assert CIRCUITS.build(name).name == CIRCUIT_FACTORIES[name]().name

    def test_parameterised_circuit_families(self):
        assert CIRCUITS.build("qft:7").num_qubits == 7
        assert CIRCUITS.build("aqft:9").num_qubits == 9
        assert CIRCUITS.build("cat:5").num_qubits == 5
        hidden = CIRCUITS.build("hidden-stage:8")
        assert hidden.num_qubits == 8
        # Same seed -> same circuit; explicit seed parameter differs.
        assert CIRCUITS.build("hidden-stage:8").gates == hidden.gates
        assert CIRCUITS.build("hidden-stage:8x3").gates != hidden.gates

    def test_parameterised_environments(self):
        assert ENVIRONMENTS.build("chain:12").num_qubits == 12
        assert ENVIRONMENTS.build("grid:4x4").num_qubits == 16
        assert ENVIRONMENTS.build("ring:5").num_qubits == 5
        assert ENVIRONMENTS.build("complete:6").num_qubits == 6
        assert ENVIRONMENTS.build("star:7").num_qubits == 7
        assert ENVIRONMENTS.build("heavy-hex:2").num_qubits > 4

    def test_molecules_registered(self):
        assert ENVIRONMENTS.build("histidine").name == "histidine"
        assert "trans-crotonic-acid" in ENVIRONMENTS

    def test_scheduler_backends_resolve(self):
        assert SCHEDULER_BACKENDS.build("python") == "python"
        assert SCHEDULER_BACKENDS.build("auto") in ("python", "numpy", "native")

    def test_shard_strategies_registered(self):
        assert SHARD_STRATEGIES.names() == ["cost-balanced", "round-robin"]


class TestLoaders:
    def test_load_circuit_registry_and_file(self, tmp_path):
        from repro.circuits import qasm
        from repro.circuits.library import qec3_encoder

        assert load_circuit("qft:4").num_qubits == 4
        path = tmp_path / "c.qc"
        qasm.dump(qec3_encoder(), str(path))
        assert load_circuit(str(path)).num_gates == qec3_encoder().num_gates

    def test_load_environment_registry_and_file(self, tmp_path):
        from repro.hardware import io as hio
        from repro.hardware.molecules import acetyl_chloride

        assert load_environment("chain:4").num_qubits == 4
        path = tmp_path / "e.json"
        hio.save(acetyl_chloride(), str(path))
        assert load_environment(str(path)).num_qubits == 3

    def test_unknown_specs_raise_with_names(self):
        with pytest.raises(UnknownSpecError, match="qft6"):
            load_circuit("nope")
        with pytest.raises(UnknownSpecError, match="histidine"):
            load_environment("nope")

    def test_loader_partials_pickle_by_reference(self):
        # The property shard plans rely on: the same spec string produces
        # byte-identical factory pickles in any process.
        blob = pickle.dumps(partial(load_circuit, "qft:5"))
        assert pickle.loads(blob)().num_qubits == 5
        assert blob == pickle.dumps(partial(load_circuit, "qft:5"))

    def test_coercion_helpers(self):
        factory = as_circuit_factory("qft6")
        assert factory().name == "qft6"
        original = load_circuit  # any callable passes through untouched
        assert as_circuit_factory(original) is original
        assert as_environment_factory("chain:3")().num_qubits == 3
        with pytest.raises(UnknownSpecError):
            as_circuit_factory(42)
        with pytest.raises(UnknownSpecError):
            as_environment_factory(42)

    def test_errors_are_repro_errors(self):
        assert issubclass(UnknownSpecError, RegistryError)
        assert issubclass(RegistryError, ReproError)
