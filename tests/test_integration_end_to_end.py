"""End-to-end integration tests: place, route, schedule, simulate, verify."""

import pytest

from repro.circuits.library import (
    cat_state_circuit,
    phase_estimation_circuit,
    qec3_encoder,
    qec5_encoder,
    qft_circuit,
)
from repro.core.config import PlacementOptions
from repro.core.placement import place_circuit
from repro.hardware.architectures import grid, linear_chain, ring
from repro.hardware.molecules import (
    acetyl_chloride,
    boc_glycine_fluoride,
    histidine,
    trans_crotonic_acid,
)
from repro.simulation.verify import verify_placement
from repro.timing.scheduler import runtime_lower_bound


CASES = [
    # (circuit factory, environment factory, options)
    (qec3_encoder, acetyl_chloride, PlacementOptions()),
    (qec5_encoder, trans_crotonic_acid, PlacementOptions()),
    (lambda: phase_estimation_circuit(3, 1), boc_glycine_fluoride, PlacementOptions(threshold=200.0)),
    (lambda: qft_circuit(5), trans_crotonic_acid, PlacementOptions(threshold=100.0)),
    (lambda: cat_state_circuit(6), trans_crotonic_acid, PlacementOptions(threshold=100.0)),
    (lambda: qft_circuit(4), lambda: linear_chain(6), PlacementOptions(threshold=10.0)),
    (lambda: cat_state_circuit(5), lambda: ring(6), PlacementOptions(threshold=10.0)),
    (lambda: qft_circuit(4), lambda: grid(2, 3), PlacementOptions(threshold=10.0)),
]


@pytest.mark.parametrize("circuit_factory,environment_factory,options", CASES)
def test_place_and_verify(circuit_factory, environment_factory, options):
    """The placed physical circuit implements the logical circuit exactly."""
    circuit = circuit_factory()
    environment = environment_factory()
    result = place_circuit(circuit, environment, options)

    # Structural invariants of the result.
    assert result.num_subcircuits >= 1
    assert len(result.swap_stages) == result.num_subcircuits - 1
    assert result.total_runtime > 0
    assert result.total_runtime >= runtime_lower_bound(circuit, environment) - 1e-9
    for stage in result.stages:
        assert len(set(stage.placement.values())) == circuit.num_qubits

    # Full quantum verification (small registers only).
    if environment.num_qubits <= 12:
        report = verify_placement(circuit, result, environment, num_random_states=1)
        assert report.equivalent, (
            f"placement of {circuit.name} on {environment.name} changed the "
            f"computation (fidelity {report.worst_fidelity})"
        )


def test_larger_histidine_placement_structurally_sound():
    """aqft on histidine exercises deep multi-stage placement + routing."""
    from repro.circuits.library import aqft9

    circuit = aqft9()
    environment = histidine()
    result = place_circuit(circuit, environment, PlacementOptions(threshold=100.0))
    assert result.num_subcircuits >= 2
    # Every logical qubit is delivered from its stage-i node to its stage-i+1
    # node by the corresponding swap stage.
    for index, swap_stage in enumerate(result.swap_stages):
        before = result.stages[index].placement
        after = result.stages[index + 1].placement
        position = {node: node for node in environment.nodes}
        for layer in swap_stage.routing.layers:
            for a, b in layer:
                position[a], position[b] = position[b], position[a]
        location = {token: node for node, token in position.items()}
        for qubit, node in before.items():
            assert location[node] == after[qubit]


def test_threshold_sweep_consistency_on_crotonic():
    """Higher thresholds can only merge workspaces, never split them."""
    counts = []
    for threshold in (100.0, 500.0, 10000.0):
        result = place_circuit(
            qft_circuit(6), trans_crotonic_acid(), PlacementOptions(threshold=threshold)
        )
        counts.append(result.num_subcircuits)
    assert counts[0] >= counts[1] >= counts[2]
    assert counts[2] == 1
