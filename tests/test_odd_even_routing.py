"""Tests for the odd-even transposition chain router."""

import random

import networkx as nx
import pytest

from repro.exceptions import RoutingError
from repro.hardware.architectures import linear_chain
from repro.routing.bubble import route_permutation
from repro.routing.odd_even import chain_order_from_graph, route_permutation_odd_even
from repro.simulation.verify import verify_routing_layers


class TestChainOrder:
    def test_path_graph_order(self):
        order = chain_order_from_graph(nx.path_graph(5))
        assert order == [0, 1, 2, 3, 4] or order == [4, 3, 2, 1, 0]

    def test_single_node(self):
        assert chain_order_from_graph(nx.path_graph(1)) == [0]

    def test_non_chain_rejected(self):
        with pytest.raises(RoutingError):
            chain_order_from_graph(nx.star_graph(3))
        with pytest.raises(RoutingError):
            chain_order_from_graph(nx.cycle_graph(4))

    def test_disconnected_rejected(self):
        with pytest.raises(RoutingError):
            chain_order_from_graph(nx.Graph([(0, 1), (2, 3)]))


class TestOddEvenRouting:
    def test_identity_needs_no_layers(self):
        graph = nx.path_graph(6)
        result = route_permutation_odd_even(graph, {i: i for i in range(6)})
        assert result.num_swaps == 0

    def test_reversal_depth_at_most_n(self):
        n = 10
        graph = nx.path_graph(n)
        permutation = {i: n - 1 - i for i in range(n)}
        result = route_permutation_odd_even(graph, permutation)
        assert verify_routing_layers(result.layers, permutation)
        assert result.depth <= n

    def test_random_permutations_delivered_with_linear_depth(self):
        rng = random.Random(13)
        n = 12
        graph = nx.path_graph(n)
        nodes = list(range(n))
        for _ in range(10):
            shuffled = list(nodes)
            rng.shuffle(shuffled)
            permutation = dict(zip(nodes, shuffled))
            result = route_permutation_odd_even(graph, permutation)
            assert verify_routing_layers(result.layers, permutation)
            assert result.depth <= n

    def test_partial_permutation(self):
        graph = nx.path_graph(6)
        result = route_permutation_odd_even(graph, {0: 5})
        position = {node: node for node in graph.nodes()}
        for layer in result.layers:
            for a, b in layer:
                position[a], position[b] = position[b], position[a]
        location = {token: node for node, token in position.items()}
        assert location[0] == 5

    def test_layers_use_chain_edges_only(self):
        graph = nx.path_graph(8)
        permutation = {i: (i + 3) % 8 for i in range(8)}
        result = route_permutation_odd_even(graph, permutation)
        for layer in result.layers:
            for a, b in layer:
                assert abs(a - b) == 1

    def test_usually_no_deeper_than_bubble_router_on_chains(self):
        """On chains the specialised router should not lose to the general one."""
        rng = random.Random(5)
        env = linear_chain(10)
        graph = env.adjacency_graph(10.0)
        nodes = list(graph.nodes())
        wins = 0
        trials = 10
        for _ in range(trials):
            shuffled = list(nodes)
            rng.shuffle(shuffled)
            permutation = dict(zip(nodes, shuffled))
            odd_even = route_permutation_odd_even(graph, permutation)
            bubble = route_permutation(graph, permutation)
            if odd_even.depth <= bubble.depth:
                wins += 1
        assert wins >= trials // 2
