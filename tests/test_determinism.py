"""End-to-end hash-seed and worker-count determinism.

The placement pipeline (including the SWAP router, historically the one
hash-seed-dependent stage) must produce byte-identical experiment outputs

* across different ``PYTHONHASHSEED`` values — each subprocess gets a
  different string-hash order, so any surviving ``set``-iteration
  dependence shows up as a diff; and
* across ``--jobs 1`` vs ``--jobs 4`` — worker processes have their own
  interpreter state and caches, so the parallel grid must reduce to the
  serial one exactly.

The fingerprint below covers a threshold sweep (Table 3 machinery), a full
placement with every SWAP layer spelled out (the router), the Table 2
reconstruction and a Table 4 scalability point, excluding only wall-clock
fields.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_SRC = Path(__file__).resolve().parent.parent / "src"

FINGERPRINT_SCRIPT = r"""
import json
import sys

from repro.analysis.experiments import run_table2
from repro.analysis.scalability import run_scalability_sweep
from repro.analysis.sweep import sweep_circuit
from repro.circuits.library import phaseest, qft6
from repro.core.config import PlacementOptions
from repro.core.placement import place_circuit
from repro.hardware.molecules import trans_crotonic_acid

jobs = int(sys.argv[1])

fingerprint = {}

row = sweep_circuit(
    phaseest,
    trans_crotonic_acid(),
    thresholds=(50.0, 100.0, 200.0, 1000.0),
    jobs=jobs,
)
fingerprint["sweep"] = [
    (cell.threshold, cell.runtime_seconds, cell.num_subcircuits)
    for cell in row.cells
]

result = place_circuit(
    qft6(), trans_crotonic_acid(), PlacementOptions(threshold=100.0)
)
fingerprint["placement"] = {
    "total_runtime": result.total_runtime,
    "stages": [
        sorted((repr(q), repr(n)) for q, n in stage.placement.items())
        for stage in result.stages
    ],
    "swap_layers": [
        [[sorted((repr(a), repr(b))) for a, b in layer]
         for layer in swap.routing.layers]
        for swap in result.swap_stages
    ],
    "swap_runtimes": [swap.runtime for swap in result.swap_stages],
}

fingerprint["table2"] = [
    (r.circuit_name, r.measured_runtime_seconds, r.num_subcircuits, r.search_space)
    for r in run_table2(jobs=jobs)
]

fingerprint["scalability"] = [
    (r.num_qubits, r.num_gates, r.hidden_stages, r.num_subcircuits,
     r.circuit_runtime_seconds)
    for r in run_scalability_sweep((8, 16), seed=3, jobs=jobs)
]

json.dump(fingerprint, sys.stdout, sort_keys=True)
"""


def _fingerprint(hash_seed: str, jobs: int, backend: str = None) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    env.pop("REPRO_SCHEDULER_BACKEND", None)
    if backend is not None:
        env["REPRO_SCHEDULER_BACKEND"] = backend
    env["PYTHONPATH"] = str(REPO_SRC) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    completed = subprocess.run(
        [sys.executable, "-c", FINGERPRINT_SCRIPT, str(jobs)],
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, completed.stderr
    return completed.stdout


class TestHashSeedDeterminism:
    def test_outputs_identical_across_hash_seeds_and_worker_counts(self):
        reference = _fingerprint("0", jobs=1)
        # Sanity: the fingerprint covers real work, including SWAP stages.
        decoded = json.loads(reference)
        assert any(decoded["placement"]["swap_layers"])
        assert decoded["sweep"][1][1] is not None

        for hash_seed in ("1", "12345"):
            assert _fingerprint(hash_seed, jobs=1) == reference, (
                f"serial outputs diverged at PYTHONHASHSEED={hash_seed}"
            )
        assert _fingerprint("0", jobs=4) == reference, (
            "jobs=4 outputs diverged from jobs=1"
        )
        assert _fingerprint("98765", jobs=4) == reference, (
            "jobs=4 outputs diverged under a different hash seed"
        )

    def test_outputs_identical_across_scheduler_backends(self):
        """The evaluation backend is an execution detail: forcing python or
        numpy (each under its own hash seed, and once through the parallel
        grid) must reproduce the same bytes — the scheduler backends are
        bit-identical by contract."""
        pytest.importorskip("numpy")
        reference = _fingerprint("0", jobs=1, backend="python")
        assert _fingerprint("31337", jobs=1, backend="numpy") == reference, (
            "numpy-backend outputs diverged from the python backend"
        )
        assert _fingerprint("424242", jobs=2, backend="numpy") == reference, (
            "parallel numpy-backend outputs diverged from the serial "
            "python backend"
        )

    def test_native_backend_outputs_identical_to_python(self):
        """The compiled replay kernel is held to the same byte-identity
        contract as numpy, across hash seeds and the parallel grid."""
        from repro.timing import _native

        if not _native.available():
            pytest.skip(f"native kernel unavailable: "
                        f"{_native.unavailable_reason()}")
        reference = _fingerprint("0", jobs=1, backend="python")
        assert _fingerprint("31337", jobs=1, backend="native") == reference, (
            "native-backend outputs diverged from the python backend"
        )
        assert _fingerprint("424242", jobs=2, backend="native") == reference, (
            "parallel native-backend outputs diverged from the serial "
            "python backend"
        )


class TestRandomizedHashSeedRouting:
    @pytest.mark.parametrize("hash_seed", ["7", "31337"])
    def test_cli_sweep_identical_across_hash_seeds(self, hash_seed):
        """The CLI path (closure-free factories, --jobs plumbing) is stable too."""
        def run(seed):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = seed
            env["PYTHONPATH"] = str(REPO_SRC) + (
                os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
            )
            completed = subprocess.run(
                [
                    sys.executable, "-m", "repro.cli", "sweep",
                    "qft6", "trans-crotonic-acid",
                    "--thresholds", "100", "200",
                ],
                env=env,
                capture_output=True,
                text=True,
                timeout=600,
            )
            assert completed.returncode == 0, completed.stderr
            return completed.stdout

        assert run(hash_seed) == run("0")


# Exercises the two call sites fixed in the lint sweep (docs/static-analysis.md):
# the odd-even router's chain-endpoint pick and the trace renderer's default
# qubit order, both now routed through core._bitset.canonical_order.  Mixed
# node types (ints and strings) make any revert to value-`sorted` raise and
# any revert to set iteration hash-seed-dependent.
ROUTING_TRACE_SCRIPT = r"""
import json
import sys

import networkx as nx

from repro.hardware.molecules import acetyl_chloride
from repro.circuits.library import qec3_encoder
from repro.routing.odd_even import route_permutation_odd_even
from repro.timing.scheduler import schedule
from repro.timing.trace import format_trace

chain = nx.Graph()
nodes = ["M", 2, "C1", 17, "zz", 3]
for a, b in zip(nodes, nodes[1:]):
    chain.add_edge(a, b)
routing = route_permutation_odd_even(
    chain, {"M": 3, 3: "M", "C1": 17, 17: "C1"}
)
fingerprint = {
    "layers": [[(repr(a), repr(b)) for a, b in layer] for layer in routing.layers],
}

result = schedule(
    qec3_encoder(), {"a": "M", "b": "C2", "c": "C1"}, acetyl_chloride()
)
fingerprint["trace"] = format_trace(result)

json.dump(fingerprint, sys.stdout, sort_keys=True)
"""


class TestRoutingAndTraceHashSeedStability:
    def test_odd_even_and_trace_identical_across_hash_seeds(self):
        def run(hash_seed):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = hash_seed
            env["PYTHONPATH"] = str(REPO_SRC) + (
                os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
            )
            completed = subprocess.run(
                [sys.executable, "-c", ROUTING_TRACE_SCRIPT],
                env=env,
                capture_output=True,
                text=True,
                timeout=600,
            )
            assert completed.returncode == 0, completed.stderr
            return completed.stdout

        reference = run("0")
        decoded = json.loads(reference)
        assert decoded["layers"], "router produced no swap layers"
        assert decoded["trace"].splitlines()[0].startswith("time[ ]")
        for hash_seed in ("1", "31337"):
            assert run(hash_seed) == reference, (
                f"routing/trace output diverged at PYTHONHASHSEED={hash_seed}"
            )
