"""Tests of the NMR molecule data set (experiment E5 and its neighbours)."""

import networkx as nx
import pytest

from repro.hardware.molecules import (
    MOLECULE_FACTORIES,
    acetyl_chloride,
    all_molecules,
    boc_glycine_fluoride,
    histidine,
    molecule,
    pentafluorobutadienyl_iron,
    trans_crotonic_acid,
)


class TestAcetylChloride:
    """Figure 1: the weights are pinned exactly by Example 3 / Table 1."""

    def test_qubit_set(self):
        env = acetyl_chloride()
        assert set(env.nodes) == {"M", "C1", "C2"}

    def test_single_qubit_delays(self):
        env = acetyl_chloride()
        assert env.single_qubit_delay("M") == 8.0
        assert env.single_qubit_delay("C1") == 8.0
        assert env.single_qubit_delay("C2") == 1.0

    def test_pair_delays(self):
        env = acetyl_chloride()
        assert env.pair_delay("M", "C1") == 38.0
        assert env.pair_delay("C1", "C2") == 89.0
        assert env.pair_delay("M", "C2") == 672.0

    def test_time_unit(self):
        assert acetyl_chloride().time_unit_seconds == pytest.approx(1e-4)


class TestTransCrotonicAcid:
    def test_seven_qubits(self):
        assert trans_crotonic_acid().num_qubits == 7

    def test_chemical_bond_graph_topology(self):
        """The fast-interaction graph must match Fig. 3's chemical bonds."""
        graph = trans_crotonic_acid().adjacency_graph(100.0)
        expected = {
            frozenset({"M", "C1"}),
            frozenset({"C1", "C2"}),
            frozenset({"C2", "C3"}),
            frozenset({"C3", "C4"}),
            frozenset({"C2", "H1"}),
            frozenset({"C3", "H2"}),
        }
        assert set(map(frozenset, graph.edges())) == expected

    def test_bond_graph_is_a_tree(self):
        graph = trans_crotonic_acid().adjacency_graph(100.0)
        assert nx.is_tree(graph)

    def test_disconnected_at_threshold_50(self):
        """C3-C4 is the slowest bond; threshold 50 cuts C4 off (Section 6)."""
        env = trans_crotonic_acid()
        assert not env.is_connected_at(50.0)
        assert env.is_connected_at(100.0)


class TestOtherMolecules:
    def test_histidine_has_twelve_qubits(self):
        assert histidine().num_qubits == 12

    def test_histidine_bond_graph_connected_at_50(self):
        assert histidine().is_connected_at(50.0)

    def test_histidine_bond_graph_contains_ring(self):
        graph = histidine().adjacency_graph(50.0)
        assert len(nx.cycle_basis(graph)) >= 1

    def test_boc_glycine_has_five_qubits(self):
        assert boc_glycine_fluoride().num_qubits == 5

    def test_boc_glycine_connected_at_50(self):
        assert boc_glycine_fluoride().is_connected_at(50.0)

    def test_iron_complex_has_five_qubits(self):
        assert pentafluorobutadienyl_iron().num_qubits == 5

    def test_iron_complex_has_no_fast_interaction_below_100(self):
        """The Table 3 N/A rows: thresholds 50 and 100 disallow everything."""
        env = pentafluorobutadienyl_iron()
        assert env.adjacency_graph(50.0).number_of_edges() == 0
        assert env.adjacency_graph(100.0).number_of_edges() == 0
        assert env.adjacency_graph(200.0).number_of_edges() >= 4


class TestRegistry:
    def test_all_molecules_count(self):
        assert len(all_molecules()) == len(MOLECULE_FACTORIES) == 5

    def test_molecule_lookup(self):
        assert molecule("acetyl-chloride").name == "acetyl chloride"

    def test_unknown_molecule_raises(self):
        with pytest.raises(KeyError):
            molecule("water")

    def test_every_molecule_has_positive_delays(self):
        for env in all_molecules():
            for node in env.nodes:
                assert env.single_qubit_delay(node) > 0
            for delay in env.explicit_pairs().values():
                assert delay > 0

    def test_every_molecule_is_connected_somewhere(self):
        for env in all_molecules():
            threshold = env.minimal_connecting_threshold()
            assert env.is_connected_at(threshold)

    def test_factories_return_fresh_objects(self):
        assert acetyl_chloride() is not acetyl_chloride()
