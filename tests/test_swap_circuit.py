"""Unit tests for SWAP-stage circuits and their costing."""

import pytest

from repro.hardware.architectures import linear_chain
from repro.routing.bubble import RoutingResult, route_permutation
from repro.routing.permutation import Permutation
from repro.routing.swap_circuit import (
    apply_layers_to_placement,
    routing_circuit,
    routing_runtime,
    swap_stage_circuit,
    swap_stage_runtime,
    uniform_swap_depth_cost,
)


class TestSwapStageCircuit:
    def test_circuit_contains_one_swap_gate_per_swap(self):
        layers = [[(0, 1), (2, 3)], [(1, 2)]]
        circuit = swap_stage_circuit(layers, range(4))
        assert circuit.num_gates == 3
        assert all(gate.name == "SWAP" for gate in circuit)

    def test_swap_gates_have_duration_three(self):
        circuit = swap_stage_circuit([[(0, 1)]], range(2))
        assert circuit[0].duration == 3.0

    def test_empty_layers_give_empty_circuit(self):
        assert swap_stage_circuit([], range(3)).num_gates == 0


class TestCosting:
    def test_single_swap_runtime(self):
        env = linear_chain(4)  # pair delay 10 units
        assert swap_stage_runtime([[(0, 1)]], env) == 30.0

    def test_parallel_swaps_cost_one_swap(self):
        env = linear_chain(4)
        assert swap_stage_runtime([[(0, 1), (2, 3)]], env) == 30.0

    def test_sequential_layers_add_up(self):
        env = linear_chain(4)
        assert swap_stage_runtime([[(0, 1)], [(1, 2)]], env) == 60.0

    def test_disjoint_layers_overlap_in_asynchronous_model(self):
        env = linear_chain(6)
        # Layers touch disjoint qubits, so the asynchronous model overlaps them.
        runtime = swap_stage_runtime([[(0, 1)], [(3, 4)]], env)
        assert runtime == 30.0

    def test_sequential_levels_model_does_not_overlap(self):
        env = linear_chain(6)
        runtime = swap_stage_runtime([[(0, 1)], [(3, 4)]], env, sequential_levels=True)
        assert runtime == 60.0

    def test_empty_stage_costs_nothing(self):
        assert swap_stage_runtime([], linear_chain(3)) == 0.0

    def test_uniform_depth_cost(self):
        result = RoutingResult([[(0, 1)], [(1, 2)]], Permutation.identity(range(3)))
        assert uniform_swap_depth_cost(result, swap_time=2.0) == 4.0

    def test_routing_runtime_and_circuit_wrappers(self):
        env = linear_chain(5)
        result = route_permutation(env.adjacency_graph(10.0), {0: 2, 2: 0})
        circuit = routing_circuit(result, env)
        assert circuit.num_gates == result.num_swaps
        assert routing_runtime(result, env) > 0


class TestApplyLayers:
    def test_tracks_qubit_positions(self):
        placement = {"q": 0, "r": 2}
        layers = [[(0, 1)], [(1, 2)]]
        final = apply_layers_to_placement(placement, layers)
        assert final["q"] == 2
        assert final["r"] == 1

    def test_untouched_qubits_stay(self):
        placement = {"q": 3}
        assert apply_layers_to_placement(placement, [[(0, 1)]]) == {"q": 3}
