"""Unit tests for the recursive bubble router (Section 5.2, experiment E7/E9)."""

import random

import networkx as nx
import pytest

from repro.exceptions import RoutingError
from repro.routing.bubble import route_between_placements, route_permutation
from repro.routing.permutation import Permutation
from repro.simulation.verify import verify_routing_layers


def _check_routing(graph, permutation, **kwargs):
    """Route and assert delivery + structural validity; return the result."""
    result = route_permutation(graph, permutation, **kwargs)
    mapping = permutation.as_dict() if isinstance(permutation, Permutation) else dict(permutation)
    assert verify_routing_layers(result.layers, mapping)
    for layer in result.layers:
        used = set()
        for a, b in layer:
            assert graph.has_edge(a, b)
            assert a not in used and b not in used
            used.update((a, b))
    return result


class TestBasicRouting:
    def test_identity_needs_no_swaps(self):
        graph = nx.path_graph(5)
        result = route_permutation(graph, Permutation.identity(range(5)))
        assert result.num_swaps == 0

    def test_adjacent_transposition_single_swap(self):
        graph = nx.path_graph(3)
        result = _check_routing(graph, {0: 1, 1: 0})
        assert result.num_swaps == 1
        assert result.depth == 1

    def test_end_to_end_move_on_a_path(self):
        graph = nx.path_graph(5)
        result = _check_routing(graph, {0: 4})
        assert result.depth >= 4  # the token must travel four hops

    def test_full_reversal_on_a_path(self):
        graph = nx.path_graph(6)
        permutation = {i: 5 - i for i in range(6)}
        result = _check_routing(graph, permutation)
        assert result.depth <= 8 * 6  # the paper's linear bound, generously

    def test_cycle_rotation(self):
        graph = nx.cycle_graph(6)
        permutation = {i: (i + 1) % 6 for i in range(6)}
        _check_routing(graph, permutation)

    def test_unreachable_target_raises(self):
        graph = nx.Graph([(0, 1), (2, 3)])
        with pytest.raises(RoutingError):
            route_permutation(graph, {0: 2, 2: 0})

    def test_disconnected_graph_with_local_moves(self):
        graph = nx.Graph([(0, 1), (2, 3)])
        result = _check_routing(graph, {0: 1, 1: 0, 2: 3, 3: 2})
        assert result.num_swaps == 2
        assert result.depth == 1  # both components swap in parallel

    def test_empty_graph(self):
        result = route_permutation(nx.Graph(), {})
        assert result.layers == []


class TestFigure3Example:
    def test_crotonic_acid_permutation(self, crotonic):
        """Example 4 / Figure 3: the (M C1 H1 C2 C3 H2 C4) -> (C1 C2 C3 C4 H2 H1 M) permutation."""
        graph = crotonic.adjacency_graph(100.0)
        permutation = {
            "M": "C1",
            "C1": "C2",
            "H1": "C3",
            "C2": "C4",
            "C3": "H2",
            "H2": "H1",
            "C4": "M",
        }
        result = _check_routing(graph, permutation)
        # All seven tokens move; the bubble router must stay within the
        # paper's linear-depth regime on this 7-node tree.
        assert result.depth <= 14
        assert result.num_swaps >= 6


class TestRandomPermutations:
    @pytest.mark.parametrize("graph_builder", [
        lambda: nx.path_graph(9),
        lambda: nx.cycle_graph(8),
        lambda: nx.convert_node_labels_to_integers(nx.grid_2d_graph(3, 4)),
        lambda: nx.random_labeled_tree(12, seed=7) if hasattr(nx, "random_labeled_tree") else nx.random_tree(12, seed=7),
    ])
    def test_random_full_permutations_delivered(self, graph_builder):
        graph = graph_builder()
        nodes = list(graph.nodes())
        rng = random.Random(11)
        for _ in range(5):
            shuffled = list(nodes)
            rng.shuffle(shuffled)
            permutation = dict(zip(nodes, shuffled))
            _check_routing(graph, permutation)

    def test_partial_permutations_delivered(self):
        graph = nx.path_graph(8)
        rng = random.Random(3)
        for _ in range(5):
            chosen = rng.sample(range(8), 4)
            targets = list(chosen)
            rng.shuffle(targets)
            partial = dict(zip(chosen, targets))
            _check_routing(graph, partial)


class TestLeafOverride:
    def test_leaf_override_preserves_correctness(self, crotonic):
        graph = crotonic.adjacency_graph(100.0)
        permutation = {"M": "C1", "C1": "M", "H2": "C4", "C4": "H2"}
        with_override = _check_routing(graph, permutation, leaf_override=True)
        without_override = _check_routing(graph, permutation, leaf_override=False)
        assert with_override.depth <= without_override.depth + 2

    def test_leaf_override_handles_direct_neighbour_case(self):
        # Token for the leaf sits on its only neighbour: one swap suffices.
        graph = nx.path_graph(4)
        result = route_permutation(graph, {2: 3, 3: 2}, leaf_override=True)
        assert result.num_swaps == 1


class TestBetweenPlacements:
    def test_route_between_placements_moves_qubits(self, crotonic):
        graph = crotonic.adjacency_graph(100.0)
        placement_from = {"q0": "M", "q1": "C2"}
        placement_to = {"q0": "C3", "q1": "C1"}
        result = route_between_placements(graph, placement_from, placement_to)
        # Track tokens explicitly.
        position = {node: node for node in graph.nodes()}
        for layer in result.layers:
            for a, b in layer:
                position[a], position[b] = position[b], position[a]
        # position maps node -> token originally there; invert it.
        location = {token: node for node, token in position.items()}
        assert location["M"] == "C3"
        assert location["C2"] == "C1"
